//! The [`BayesianModel`] trait: the single abstraction the unified solver
//! engine ([`crate::solve`]) understands.
//!
//! The paper's six ignorance measures are defined identically for every
//! representation of a Bayesian game — only the primitives differ: what an
//! *action* is (a matrix column index, a path in a graph), how a strategy
//! profile's social cost is computed, and how an agent's interim best
//! response is found. This trait captures exactly those primitives;
//! everything built on top of them — equilibrium checking, best-response
//! dynamics, strategy-space sizing, and the full measure computation in
//! [`crate::solve::Solver`] — is shared **default-method** logic, written
//! once.
//!
//! Both [`crate::bayesian::BayesianGame`] (matrix form) and
//! `bi_ncs::BayesianNcsGame` (network cost-sharing form) implement this
//! trait, so one `Solver` serves both.

use bi_util::{approx_le, EPS};

use crate::compiled::{CompiledSpace, GenericLowered, Lowered};
use crate::solve::SolveError;

/// A pure strategy profile of a model: `profile[i][τ]` is the action agent
/// `i` plays on observing her `τ`-th type.
pub type Profile<M> = Vec<Vec<<M as BayesianModel>::Action>>;

/// The complete-information side of the six measures: prior-expected
/// optimum and best/worst pure-Nash social cost of the underlying games.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CompleteInfo {
    /// `optC = Σ_t p(t)·min_a K_t(a)`.
    pub opt_c: f64,
    /// `best-eqC = Σ_t p(t)·min over Nash equilibria of K_t`.
    pub best_eq_c: f64,
    /// `worst-eqC = Σ_t p(t)·max over Nash equilibria of K_t`.
    pub worst_eq_c: f64,
}

/// A finite Bayesian game, seen through the primitives the unified solver
/// needs.
///
/// # Contract
///
/// * Type indices `τ` range over `0..type_count(i)`; every
///   positive-probability type of agent `i` appears exactly once.
/// * [`candidate_actions`](Self::candidate_actions) returns a non-empty
///   set per `(agent, type)` slot containing every action relevant for
///   *optimization* (a social optimum and all equilibria of interest are
///   attained on the candidate product space). Equilibrium *checks* are
///   exact over the full action space via
///   [`best_response`](Self::best_response), which need not be restricted
///   to candidates.
/// * [`interim_cost`](Self::interim_cost) may be unnormalized by the type
///   marginal (the normalization cancels when comparing actions).
pub trait BayesianModel: Sync {
    /// One action of one agent (a matrix column index, a path, …).
    ///
    /// Equality is used by the compiled evaluation layer
    /// ([`crate::compiled`]) to map actions produced by
    /// [`best_response`](Self::best_response) back onto flat candidate
    /// indices.
    type Action: Clone + Send + Sync + PartialEq;

    /// Number of agents `k`.
    fn num_agents(&self) -> usize;

    /// Number of type slots of agent `i`.
    fn type_count(&self, agent: usize) -> usize;

    /// Prior marginal weight of agent `agent`'s type `tau`; slots with
    /// weight `0.0` are pinned (skipped by equilibrium checks and
    /// dynamics — their action never affects any cost).
    fn type_weight(&self, agent: usize, tau: usize) -> f64;

    /// The candidate actions of agent `agent` at type `tau` that exact
    /// optimization enumerates.
    ///
    /// # Errors
    ///
    /// Returns a [`SolveError`] when the action set cannot be enumerated
    /// completely (e.g. path-enumeration limits).
    fn candidate_actions(&self, agent: usize, tau: usize) -> Result<Vec<Self::Action>, SolveError>;

    /// Number of candidate actions at a slot, without materializing them.
    ///
    /// # Errors
    ///
    /// Same as [`candidate_actions`](Self::candidate_actions).
    fn candidate_count(&self, agent: usize, tau: usize) -> Result<usize, SolveError> {
        self.candidate_actions(agent, tau).map(|a| a.len())
    }

    /// Ex-ante social cost `K(s) = E_t[K_t(s(t))]`.
    fn social_cost(&self, profile: &Profile<Self>) -> f64;

    /// Interim cost of agent `agent` playing `action` at type `tau` while
    /// everyone else follows `profile` (possibly unnormalized by the type
    /// marginal).
    fn interim_cost(
        &self,
        agent: usize,
        tau: usize,
        action: &Self::Action,
        profile: &Profile<Self>,
    ) -> f64;

    /// Agent `agent`'s exact interim best response at type `tau`:
    /// `(action, interim cost)`, minimizing over the **full** action
    /// space (not just candidates).
    fn best_response(
        &self,
        agent: usize,
        tau: usize,
        profile: &Profile<Self>,
    ) -> (Self::Action, f64);

    /// The complete-information side of the measures, computed exactly
    /// per support state.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::NoStateEquilibrium`] when some underlying
    /// game has no pure Nash equilibrium, and propagates enumeration
    /// failures.
    fn complete_info(&self) -> Result<CompleteInfo, SolveError>;

    /// Whether agents `a` and `b` are **exactly interchangeable**:
    /// swapping their entire strategies (the two agents' per-type action
    /// assignments) in any profile leaves [`social_cost`](Self::social_cost)
    /// and every interim-cost comparison **bit-for-bit** unchanged — the
    /// same floating-point terms combined in the same order, not merely
    /// equal values.
    ///
    /// The symmetry-reduced sweep ([`crate::symmetry`]) relies on this
    /// contract to evaluate only one canonical representative per orbit,
    /// so implementations must only return `true` when they can verify
    /// the invariance on their own data (e.g. bitwise-equal cost tables
    /// under the coordinate swap). The relation must be an equivalence
    /// (exact interchangeability always is — transpositions compose).
    /// The default is the always-safe `false` (no symmetry detected).
    fn agents_interchangeable(&self, a: usize, b: usize) -> bool {
        let _ = (a, b);
        false
    }

    /// Estimated cost of **one** [`agents_interchangeable`] check, in
    /// units comparable to one full-sweep profile evaluation.
    ///
    /// [`SymmetryMode::Auto`](crate::symmetry::SymmetryMode) uses this to
    /// decide whether symmetry detection is worth running at all: when
    /// the up-front verification work (roughly `num_agents - 1` checks)
    /// would exceed the unreduced sweep itself, Auto skips detection and
    /// sweeps the full space — detection overhead must never turn a
    /// cheap solve into an expensive one. The default of `0` means
    /// "detection is free" and always runs it; models whose check
    /// rescans large cost tables (e.g. dense matrix games) should
    /// return their per-check table work scaled to sweep-tick units.
    ///
    /// [`agents_interchangeable`]: Self::agents_interchangeable
    fn interchangeable_check_cost(&self) -> u128 {
        0
    }

    /// Whether the slot `(agent, tau)` is interim-stable under `profile`:
    /// the played action's interim cost is (approximately) no worse than
    /// the exact best response's.
    ///
    /// Models can override this with a fused implementation when
    /// [`interim_cost`](Self::interim_cost) and
    /// [`best_response`](Self::best_response) share expensive setup.
    fn slot_is_stable(&self, agent: usize, tau: usize, profile: &Profile<Self>) -> bool {
        let played = self.interim_cost(agent, tau, &profile[agent][tau], profile);
        let (_, best) = self.best_response(agent, tau, profile);
        approx_le(played, best)
    }

    /// An interim better response at slot `(agent, tau)` improving on the
    /// played action by more than the workspace tolerance, if one exists.
    ///
    /// Like [`slot_is_stable`](Self::slot_is_stable), this exists so
    /// models can fuse the played-cost and best-response computations.
    fn slot_improvement(
        &self,
        agent: usize,
        tau: usize,
        profile: &Profile<Self>,
    ) -> Option<Self::Action> {
        let played = self.interim_cost(agent, tau, &profile[agent][tau], profile);
        let (action, cost) = self.best_response(agent, tau, profile);
        (cost < played - EPS).then_some(action)
    }

    /// Whether `profile` is a pure Bayesian equilibrium: every
    /// positive-weight `(agent, type)` slot is interim-stable.
    fn is_equilibrium(&self, profile: &Profile<Self>) -> bool {
        for i in 0..self.num_agents() {
            for tau in 0..self.type_count(i) {
                if self.type_weight(i, tau) == 0.0 {
                    continue;
                }
                if !self.slot_is_stable(i, tau, profile) {
                    return false;
                }
            }
        }
        true
    }

    /// Interim best-response dynamics from `start` until a fixed point (a
    /// Bayesian equilibrium) or `max_rounds` full sweeps. Returns the
    /// reached profile if it is an equilibrium, otherwise `None`.
    ///
    /// For Bayesian potential games (every NCS game is one) each strict
    /// improvement decreases the expected potential, so this converges.
    fn best_response_dynamics(
        &self,
        start: Profile<Self>,
        max_rounds: usize,
    ) -> Option<Profile<Self>>
    where
        Self: Sized,
    {
        let mut s = start;
        for _ in 0..max_rounds {
            let mut changed = false;
            for i in 0..self.num_agents() {
                for tau in 0..self.type_count(i) {
                    if self.type_weight(i, tau) == 0.0 {
                        continue;
                    }
                    if let Some(better) = self.slot_improvement(i, tau, &s) {
                        s[i][tau] = better;
                        changed = true;
                    }
                }
            }
            if !changed {
                return Some(s);
            }
        }
        self.is_equilibrium(&s).then_some(s)
    }

    /// Total number of pure strategy profiles over the candidate sets,
    /// with overflow surfaced as a typed error.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::SpaceTooLarge`] when the product overflows
    /// `u128`, and propagates candidate-enumeration failures.
    fn strategy_space_size(&self) -> Result<u128, SolveError> {
        let mut size = 1u128;
        for i in 0..self.num_agents() {
            for tau in 0..self.type_count(i) {
                let c = self.candidate_count(i, tau)? as u128;
                size = size.checked_mul(c).ok_or(SolveError::SpaceTooLarge)?;
            }
        }
        Ok(size)
    }

    /// Lowers the model into a compiled evaluation factory over the given
    /// flattened candidate space (see [`crate::compiled`]). The solver
    /// calls this once per solve; each worker thread then instantiates its
    /// own incremental [`crate::compiled::EvalKernel`] from the result.
    ///
    /// # Contract
    ///
    /// A kernel obtained from the returned factory must produce results
    /// **bit-for-bit identical** to calling [`social_cost`](Self::social_cost),
    /// [`is_equilibrium`](Self::is_equilibrium) and
    /// [`slot_improvement`](Self::slot_improvement) on the materialized
    /// profile — same floating-point operations in the same order. The
    /// default implementation routes through exactly those trait methods;
    /// representations override it with incrementally-maintained kernels
    /// (matrix form: strided per-state cost-table offsets; NCS: per-state
    /// edge loads) that preserve the arithmetic.
    fn lower<'a>(&'a self, space: &'a CompiledSpace<Self>) -> Box<dyn Lowered + 'a>
    where
        Self: Sized,
    {
        Box::new(GenericLowered::new(self, space))
    }
}
