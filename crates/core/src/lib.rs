//! The Bayesian-game model of *Bayesian ignorance* (Alon, Emek, Feldman,
//! Tennenholtz; PODC 2010 / TCS 2012), implemented exactly.
//!
//! A Bayesian game `G = ⟨k, {A_i}, {T_i}, {C_{i,t}}, p⟩` draws a type
//! profile `t` from the common prior `p`; each agent observes only her own
//! type and plays a strategy `s_i : T_i → A_i`. The paper compares the
//! social cost of strategy profiles in this *partial-information* setting
//! against the prior-averaged social cost of action profiles in the
//! *complete-information* underlying games `G_t`, through six quantities
//! (`optP`, `best-eqP`, `worst-eqP` vs `optC`, `best-eqC`, `worst-eqC`).
//!
//! This crate provides the model for **finite, explicitly enumerable**
//! games (the `bi-ncs` crate layers network cost-sharing structure on
//! top):
//!
//! * [`game::MatrixFormGame`] — a `k`-agent complete-information cost game;
//! * [`nash`] — exhaustive pure-Nash enumeration, optima;
//! * [`potential`] — exact potential verification and Observation 2.1
//!   (a prior-expected per-state potential is a Bayesian potential);
//! * [`bayesian::BayesianGame`] — explicit-prior Bayesian games, strategy
//!   enumeration, Bayesian-equilibrium checking, best-response dynamics;
//! * [`measures`] — the six quantities and the three ignorance ratios,
//!   plus the Observation 2.2 chain checker;
//! * [`model`] — the [`BayesianModel`] trait: the primitives any game
//!   representation (matrix form here, graph form in `bi-ncs`) exposes to
//!   the solver, with shared default equilibrium/dynamics logic;
//! * [`compiled`] — the compiled evaluation layer: per-solve lowering of
//!   any model into a flat `u32`-indexed candidate arena plus an
//!   incremental per-representation [`EvalKernel`], so sweeps mutate one
//!   digit buffer with zero action clones and delta-update their cost
//!   state;
//! * [`solve`] — the unified [`Solver`] engine: pluggable backends
//!   (exhaustive, best-response dynamics, Monte Carlo sampling), budgets,
//!   work-stealing multi-threaded sweeps, structured [`SolveReport`]s;
//! * [`symmetry`] — exact agent-interchangeability detection and
//!   canonical orbit enumeration: under [`symmetry::SymmetryMode::Auto`]
//!   the exhaustive sweep visits one representative per symmetry orbit,
//!   bit-for-bit identical results at a fraction of the evaluations;
//! * [`randomness`] — Section 4: `R(φ)`, `R̃(φ)`, the Proposition 4.2
//!   equality, and the Lemma 4.1 public-randomness distribution computed
//!   by solving the associated zero-sum game exactly;
//! * [`random_games`] — seeded generators of random (potential) games and
//!   priors for the property tests and universal-bound sweeps.
//!
//! # Examples
//!
//! ```
//! use bi_core::bayesian::BayesianGame;
//! use bi_core::game::MatrixFormGame;
//!
//! // One agent, two types, two actions; the good action depends on the
//! // state, which the agent *observes* (her own type is the whole state),
//! // so optP = optC here.
//! let g0 = MatrixFormGame::from_fn(1, &[2], |_, a| if a[0] == 0 { 1.0 } else { 2.0 });
//! let g1 = MatrixFormGame::from_fn(1, &[2], |_, a| if a[0] == 1 { 1.0 } else { 2.0 });
//! let game = BayesianGame::new(
//!     vec![2],
//!     vec![(vec![0], 0.5, g0), (vec![1], 0.5, g1)],
//! ).unwrap();
//! let m = game.measures().unwrap();
//! assert_eq!(m.opt_p, m.opt_c);
//! ```

pub mod bayesian;
pub mod codec;
pub mod compiled;
pub mod game;
pub mod measures;
pub mod model;
pub mod nash;
pub mod potential;
pub mod random_games;
pub mod randomness;
pub mod solve;
pub mod symmetry;

pub use bayesian::{BayesianGame, StrategyProfile};
pub use compiled::{CompiledSpace, EvalKernel, Lowered, SlotStep};
pub use game::MatrixFormGame;
pub use measures::{IgnoranceRatios, Measures};
pub use model::{BayesianModel, CompleteInfo};
pub use solve::{
    Backend, Budget, OrbitStats, SolveError, SolveReport, Solver, SolverBuilder, SolverConfig,
};
pub use symmetry::{Symmetry, SymmetryMode};
