//! Seeded random game and prior generators for tests and universal-bound
//! sweeps.

use rand::Rng;

use crate::bayesian::BayesianGame;
use crate::game::MatrixFormGame;
use crate::potential::PotentialTable;

/// A uniformly random cost game: every cost i.i.d. in `cost_range`.
///
/// # Panics
///
/// Panics on degenerate inputs (no agents, empty actions, bad range).
///
/// # Examples
///
/// ```
/// let g = bi_core::random_games::random_game(2, &[2, 3], (0.0, 1.0), 7);
/// assert_eq!(g.num_agents(), 2);
/// ```
#[must_use]
pub fn random_game(
    agents: usize,
    action_counts: &[usize],
    cost_range: (f64, f64),
    seed: u64,
) -> MatrixFormGame {
    let (lo, hi) = cost_range;
    assert!(hi > lo, "empty cost range");
    let mut rng = bi_util::rng::seeded(seed);
    MatrixFormGame::from_fn(agents, action_counts, |_, _| rng.random_range(lo..hi))
}

/// A random **exact potential game**: costs are
/// `C_i(a) = φ(a) + d_i(a₋ᵢ)` for a random potential `φ` and random
/// dummy terms `d_i` that do not depend on the agent's own action — the
/// canonical parametrization of exact potential games. Returns the game
/// together with its potential.
///
/// # Examples
///
/// ```
/// let (g, phi) = bi_core::random_games::random_potential_game(2, &[2, 2], 3);
/// bi_core::potential::verify_exact_potential(&g, &phi).unwrap();
/// ```
#[must_use]
pub fn random_potential_game(
    agents: usize,
    action_counts: &[usize],
    seed: u64,
) -> (MatrixFormGame, PotentialTable) {
    let mut rng = bi_util::rng::seeded(seed);
    let phi = PotentialTable::from_fn(action_counts, |_| rng.random_range(0.0..2.0));
    // Dummy terms: tabulate per agent over the *others'* actions by zeroing
    // the agent's own coordinate.
    let mut dummy_tables: Vec<PotentialTable> = Vec::with_capacity(agents);
    for i in 0..agents {
        // A random function of the *others'* actions, tabulated by zeroing
        // the agent's own coordinate.
        let mut reduced_counts = action_counts.to_vec();
        reduced_counts[i] = 1;
        let mut sub_rng = bi_util::rng::seeded(bi_util::rng::derive_seed(seed, &format!("d{i}")));
        let reduced = PotentialTable::from_fn(&reduced_counts, |_| sub_rng.random_range(0.0..2.0));
        dummy_tables.push(PotentialTable::from_fn(action_counts, |a| {
            let mut r = a.to_vec();
            r[i] = 0;
            reduced.value(&r)
        }));
    }
    let phi_for_game = phi.clone();
    let game = MatrixFormGame::from_fn(agents, action_counts, |i, a| {
        phi_for_game.value(a) + dummy_tables[i].value(a)
    });
    (game, phi)
}

/// A random Bayesian game over random potential games, with a random
/// full-support prior on `support_size` distinct type profiles. Returns
/// the game and the per-state potentials (aligned with the support order),
/// ready for Observation 2.1 experiments.
///
/// # Panics
///
/// Panics if `support_size` exceeds the number of distinct type profiles.
#[must_use]
pub fn random_bayesian_potential_game(
    type_counts: &[usize],
    action_counts: &[usize],
    support_size: usize,
    seed: u64,
) -> (BayesianGame, Vec<PotentialTable>) {
    let agents = type_counts.len();
    let total_profiles: usize = type_counts.iter().product();
    assert!(
        support_size <= total_profiles,
        "support larger than the type-profile space"
    );
    let mut rng = bi_util::rng::seeded(seed);
    // Choose distinct type profiles by index sampling without replacement.
    let mut chosen: Vec<usize> = Vec::new();
    while chosen.len() < support_size {
        let c = rng.random_range(0..total_profiles);
        if !chosen.contains(&c) {
            chosen.push(c);
        }
    }
    // Random positive probabilities, normalized.
    let raw: Vec<f64> = (0..support_size)
        .map(|_| rng.random_range(0.2..1.0))
        .collect();
    let total: f64 = raw.iter().sum();
    let mut support = Vec::with_capacity(support_size);
    let mut potentials = Vec::with_capacity(support_size);
    for (j, &profile_idx) in chosen.iter().enumerate() {
        let mut types = vec![0usize; agents];
        let mut rest = profile_idx;
        for (i, &c) in type_counts.iter().enumerate().rev() {
            types[i] = rest % c;
            rest /= c;
        }
        let (game, phi) = random_potential_game(
            agents,
            action_counts,
            bi_util::rng::derive_seed(seed, &format!("state{j}")),
        );
        support.push((types, raw[j] / total, game));
        potentials.push(phi);
    }
    let game = BayesianGame::new(type_counts.to_vec(), support).expect("valid by construction");
    (game, potentials)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::potential::verify_exact_potential;

    #[test]
    fn random_game_is_deterministic_per_seed() {
        let a = random_game(2, &[2, 2], (0.0, 1.0), 9);
        let b = random_game(2, &[2, 2], (0.0, 1.0), 9);
        assert_eq!(a, b);
    }

    #[test]
    fn random_potential_games_verify() {
        for seed in 0..10 {
            let (g, phi) = random_potential_game(3, &[2, 2, 2], seed);
            verify_exact_potential(&g, &phi).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn random_potential_games_have_pure_nash() {
        for seed in 0..10 {
            let (g, _) = random_potential_game(2, &[3, 3], seed);
            assert!(
                !crate::nash::enumerate_nash(&g).is_empty(),
                "potential game without pure Nash (seed {seed})"
            );
        }
    }

    #[test]
    fn bayesian_generator_produces_valid_games() {
        let (game, potentials) = random_bayesian_potential_game(&[2, 2], &[2, 2], 3, 4);
        assert_eq!(game.support_len(), 3);
        assert_eq!(potentials.len(), 3);
        for (idx, potential) in potentials.iter().enumerate() {
            let (_, prob, state_game) = game.state(idx);
            assert!(prob > 0.0);
            verify_exact_potential(state_game, potential).unwrap();
        }
    }

    #[test]
    fn bayesian_generator_measures_satisfy_chain() {
        for seed in 0..5 {
            let (game, _) = random_bayesian_potential_game(&[2, 2], &[2, 2], 2, seed);
            let m = game.measures().unwrap();
            m.verify_chain()
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }
}
