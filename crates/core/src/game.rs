//! Complete-information cost games with explicitly enumerable actions.

use std::fmt;

/// Hard cap on joint-profile enumeration sizes; exceeding it returns
/// [`EnumerationError`] rather than hanging.
pub const MAX_ENUMERATION: u128 = 5_000_000;

/// Error returned when an exact computation would require enumerating more
/// than [`MAX_ENUMERATION`] profiles.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EnumerationError {
    /// Number of profiles the computation would have visited.
    pub required: u128,
}

impl fmt::Display for EnumerationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "exact enumeration needs {} profiles (limit {MAX_ENUMERATION})",
            self.required
        )
    }
}

impl std::error::Error for EnumerationError {}

/// A `k`-agent complete-information game in "matrix" (tensor) form: each
/// agent `i` has a finite action set `0..action_counts[i]` and a cost for
/// every joint action profile.
///
/// Costs may be `f64::INFINITY` (the paper's NCS games charge `∞` for
/// infeasible actions) but not NaN.
///
/// # Examples
///
/// ```
/// use bi_core::game::MatrixFormGame;
///
/// // Two agents sharing a resource: cost 1 if they pick the same action.
/// let g = MatrixFormGame::from_fn(2, &[2, 2], |_, a| {
///     if a[0] == a[1] { 1.0 } else { 2.0 }
/// });
/// assert_eq!(g.cost(0, &[1, 1]), 1.0);
/// assert_eq!(g.social_cost(&[0, 1]), 4.0);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct MatrixFormGame {
    action_counts: Vec<usize>,
    strides: Vec<usize>,
    /// `costs[i][joint_index]`.
    costs: Vec<Vec<f64>>,
}

impl MatrixFormGame {
    /// Builds a game by evaluating `cost(agent, profile)` on every joint
    /// profile.
    ///
    /// # Panics
    ///
    /// Panics if `agents == 0`, any action count is zero,
    /// `action_counts.len() != agents`, the joint space exceeds
    /// [`MAX_ENUMERATION`], or `cost` returns NaN.
    #[must_use]
    pub fn from_fn<F: FnMut(usize, &[usize]) -> f64>(
        agents: usize,
        action_counts: &[usize],
        mut cost: F,
    ) -> Self {
        assert!(agents > 0, "need at least one agent");
        assert_eq!(action_counts.len(), agents, "one action count per agent");
        assert!(
            action_counts.iter().all(|&c| c > 0),
            "every agent needs at least one action"
        );
        let size = action_counts
            .iter()
            .try_fold(1u128, |acc, &c| acc.checked_mul(c as u128))
            .filter(|&s| s <= MAX_ENUMERATION)
            .expect("joint action space too large");
        let size = size as usize;
        let strides = strides_of(action_counts);
        let mut costs = vec![vec![0.0f64; size]; agents];
        let mut profile = vec![0usize; agents];
        for idx in 0..size {
            decode(idx, &strides, action_counts, &mut profile);
            for (i, table) in costs.iter_mut().enumerate() {
                let c = cost(i, &profile);
                assert!(!c.is_nan(), "cost must not be NaN");
                table[idx] = c;
            }
        }
        MatrixFormGame {
            action_counts: action_counts.to_vec(),
            strides,
            costs,
        }
    }

    /// Number of agents `k`.
    #[must_use]
    pub fn num_agents(&self) -> usize {
        self.costs.len()
    }

    /// Number of actions of agent `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn num_actions(&self, i: usize) -> usize {
        self.action_counts[i]
    }

    /// Per-agent action counts.
    #[must_use]
    pub fn action_counts(&self) -> &[usize] {
        &self.action_counts
    }

    /// Cost of agent `i` under the joint action `profile`.
    ///
    /// # Panics
    ///
    /// Panics if `i` or any action index is out of range.
    #[must_use]
    pub fn cost(&self, i: usize, profile: &[usize]) -> f64 {
        self.costs[i][self.index_of(profile)]
    }

    /// Social cost `K_t(a) = Σ_i C_{i,t}(a)`.
    ///
    /// # Panics
    ///
    /// Panics if any action index is out of range.
    #[must_use]
    pub fn social_cost(&self, profile: &[usize]) -> f64 {
        let idx = self.index_of(profile);
        self.costs.iter().map(|table| table[idx]).sum()
    }

    /// Iterates over all joint action profiles.
    #[must_use]
    pub fn profiles(&self) -> ProfileIter {
        ProfileIter::new(self.action_counts.clone())
    }

    /// Number of joint action profiles.
    #[must_use]
    pub fn profile_count(&self) -> usize {
        self.costs[0].len()
    }

    /// The joint-index stride of agent `i` (the compiled kernels address
    /// the cost tables directly by strided offsets).
    pub(crate) fn stride(&self, i: usize) -> usize {
        self.strides[i]
    }

    /// Agent `i`'s full cost table, indexed by joint profile index.
    pub(crate) fn cost_table(&self, i: usize) -> &[f64] {
        &self.costs[i]
    }

    fn index_of(&self, profile: &[usize]) -> usize {
        assert_eq!(profile.len(), self.num_agents(), "profile length mismatch");
        profile
            .iter()
            .zip(&self.action_counts)
            .zip(&self.strides)
            .map(|((&a, &count), &stride)| {
                assert!(a < count, "action {a} out of range");
                a * stride
            })
            .sum()
    }
}

fn strides_of(counts: &[usize]) -> Vec<usize> {
    let mut strides = vec![1usize; counts.len()];
    for i in (0..counts.len().saturating_sub(1)).rev() {
        strides[i] = strides[i + 1] * counts[i + 1];
    }
    strides
}

fn decode(mut idx: usize, strides: &[usize], counts: &[usize], out: &mut [usize]) {
    for i in 0..counts.len() {
        out[i] = idx / strides[i];
        idx %= strides[i];
    }
}

/// Odometer iterator over joint profiles of a product space.
///
/// # Examples
///
/// ```
/// use bi_core::game::ProfileIter;
///
/// let all: Vec<Vec<usize>> = ProfileIter::new(vec![2, 3]).collect();
/// assert_eq!(all.len(), 6);
/// assert_eq!(all[0], vec![0, 0]);
/// assert_eq!(all[5], vec![1, 2]);
/// ```
#[derive(Clone, Debug)]
pub struct ProfileIter {
    counts: Vec<usize>,
    current: Vec<usize>,
    done: bool,
}

impl ProfileIter {
    /// Creates an iterator over `Π_i (0..counts[i])`.
    ///
    /// An empty `counts` yields exactly one empty profile. Any zero count
    /// yields nothing.
    #[must_use]
    pub fn new(counts: Vec<usize>) -> Self {
        let done = counts.contains(&0);
        ProfileIter {
            current: vec![0; counts.len()],
            counts,
            done,
        }
    }

    /// Total number of profiles this iterator will yield.
    #[must_use]
    pub fn total(&self) -> u128 {
        self.counts.iter().map(|&c| c as u128).product()
    }
}

impl Iterator for ProfileIter {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        if self.done {
            return None;
        }
        let item = self.current.clone();
        // Odometer increment, last index fastest.
        let mut i = self.counts.len();
        loop {
            if i == 0 {
                self.done = true;
                break;
            }
            i -= 1;
            self.current[i] += 1;
            if self.current[i] < self.counts[i] {
                break;
            }
            self.current[i] = 0;
        }
        Some(item)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_fn_fills_costs() {
        let g = MatrixFormGame::from_fn(2, &[2, 3], |i, a| (i + a[0] * 10 + a[1]) as f64);
        assert_eq!(g.num_agents(), 2);
        assert_eq!(g.num_actions(1), 3);
        assert_eq!(g.cost(0, &[1, 2]), 12.0);
        assert_eq!(g.cost(1, &[1, 2]), 13.0);
        assert_eq!(g.social_cost(&[0, 0]), 1.0);
    }

    #[test]
    fn profile_iter_visits_everything_once() {
        let mut seen = std::collections::HashSet::new();
        for p in ProfileIter::new(vec![3, 2, 2]) {
            assert!(seen.insert(p));
        }
        assert_eq!(seen.len(), 12);
    }

    #[test]
    fn profile_iter_empty_counts_yields_one_profile() {
        let all: Vec<_> = ProfileIter::new(vec![]).collect();
        assert_eq!(all, vec![Vec::<usize>::new()]);
    }

    #[test]
    fn profile_iter_zero_count_yields_nothing() {
        assert_eq!(ProfileIter::new(vec![2, 0]).count(), 0);
    }

    #[test]
    fn infinity_costs_are_allowed() {
        let g =
            MatrixFormGame::from_fn(1, &[2], |_, a| if a[0] == 0 { f64::INFINITY } else { 1.0 });
        assert!(g.cost(0, &[0]).is_infinite());
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_costs_are_rejected() {
        let _ = MatrixFormGame::from_fn(1, &[1], |_, _| f64::NAN);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_actions_panic() {
        let g = MatrixFormGame::from_fn(1, &[2], |_, _| 0.0);
        let _ = g.cost(0, &[2]);
    }

    #[test]
    fn profile_count_matches_iterator() {
        let g = MatrixFormGame::from_fn(3, &[2, 3, 2], |_, _| 0.0);
        assert_eq!(g.profile_count(), 12);
        assert_eq!(g.profiles().count(), 12);
        assert_eq!(g.profiles().total(), 12);
    }

    #[test]
    fn enumeration_error_formats() {
        let e = EnumerationError { required: 10 };
        assert!(e.to_string().contains("10"));
    }
}
