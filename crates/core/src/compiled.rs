//! Compiled evaluation layer: flat-index profile sweeps with incremental
//! cost maintenance.
//!
//! Exhaustively sweeping the joint strategy space is the solver's hot
//! path, and consecutive odometer profiles differ in exactly **one**
//! `(agent, type)` slot. This module exploits that:
//!
//! * [`CompiledSpace`] flattens every slot's candidate actions into one
//!   contiguous arena addressed by `u32` digits, alongside precomputed
//!   type weights — built once per solve, so the sweep never touches the
//!   model's nested `Vec<Vec<Action>>` layout (or clones an `Action`)
//!   again;
//! * [`EvalKernel`] is the per-representation evaluator: it is seeded once
//!   from a chunk's starting digits and then *delta-updated* as the
//!   odometer advances single digits, so per-profile evaluation does O(Δ)
//!   maintenance work instead of recomputing from scratch;
//! * [`Lowered`] is the thread-safe factory a model's
//!   [`BayesianModel::lower`] returns: precomputed tables are shared, and
//!   each sweep worker instantiates its own mutable kernel.
//!
//! # Parity contract
//!
//! Kernels are an *evaluation strategy*, not a semantics change: every
//! kernel must return results bit-for-bit identical to the trait-method
//! path (`social_cost`, `is_equilibrium`, `slot_improvement`) on the
//! materialized profile. [`GenericLowered`]'s kernel is the reference
//! implementation — it literally maintains a profile and calls those
//! methods — and doubles as the fallback for models without a compiled
//! kernel (or whose tables would exceed memory budgets).

use rand::rngs::StdRng;
use rand::Rng;

use crate::model::{BayesianModel, Profile};
use crate::solve::SolveError;

/// The flattened candidate space of a model: one entry per `(agent, type)`
/// slot, each slot's candidate actions stored contiguously in a shared
/// arena and addressed by a `u32` digit.
///
/// Built once per solve by [`CompiledSpace::compile`]; shared (immutably)
/// by all sweep workers.
pub struct CompiledSpace<M: BayesianModel> {
    /// `(agent, tau)` per slot, agent-major (the order every sweep and
    /// dynamics pass uses).
    slots: Vec<(usize, usize)>,
    /// All candidate actions, slot-major.
    arena: Vec<M::Action>,
    /// Start of each slot's candidates in `arena` (one extra terminal
    /// entry, so slot `j` spans `offsets[j]..offsets[j + 1]`).
    offsets: Vec<usize>,
    /// Candidates per slot.
    sizes: Vec<u32>,
    /// Prior type weight per slot (`0.0` = pinned slot, skipped by
    /// equilibrium checks and dynamics).
    weights: Vec<f64>,
    /// `num_agents()` of the compiled model (profile shells need it even
    /// when trailing agents have no slots).
    num_agents: usize,
}

impl<M: BayesianModel> CompiledSpace<M> {
    /// Collects every slot's candidate set into the flat arena.
    ///
    /// # Errors
    ///
    /// Propagates [`BayesianModel::candidate_actions`] failures and
    /// returns [`SolveError::SpaceTooLarge`] if any single slot exceeds
    /// `u32::MAX` candidates (no such space could be swept anyway).
    pub fn compile(model: &M) -> Result<Self, SolveError> {
        let mut slots = Vec::new();
        let mut arena = Vec::new();
        let mut offsets = vec![0usize];
        let mut sizes = Vec::new();
        let mut weights = Vec::new();
        for i in 0..model.num_agents() {
            for tau in 0..model.type_count(i) {
                let actions = model.candidate_actions(i, tau)?;
                debug_assert!(!actions.is_empty(), "empty candidate set at ({i}, {tau})");
                let size = u32::try_from(actions.len()).map_err(|_| SolveError::SpaceTooLarge)?;
                slots.push((i, tau));
                sizes.push(size);
                weights.push(model.type_weight(i, tau));
                arena.extend(actions);
                offsets.push(arena.len());
            }
        }
        Ok(CompiledSpace {
            slots,
            arena,
            offsets,
            sizes,
            weights,
            num_agents: model.num_agents(),
        })
    }

    /// Number of `(agent, type)` slots.
    #[must_use]
    pub fn num_slots(&self) -> usize {
        self.slots.len()
    }

    /// Number of agents of the compiled model.
    #[must_use]
    pub fn num_agents(&self) -> usize {
        self.num_agents
    }

    /// The `(agent, tau)` pair of slot `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    #[must_use]
    pub fn slot(&self, j: usize) -> (usize, usize) {
        self.slots[j]
    }

    /// Number of candidates of slot `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    #[must_use]
    pub fn slot_size(&self, j: usize) -> u32 {
        self.sizes[j]
    }

    /// Prior type weight of slot `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    #[must_use]
    pub fn weight(&self, j: usize) -> f64 {
        self.weights[j]
    }

    /// The candidate action of slot `j` at digit `digit`.
    ///
    /// # Panics
    ///
    /// Panics if `j` or `digit` is out of range.
    #[must_use]
    pub fn action(&self, j: usize, digit: u32) -> &M::Action {
        &self.arena[self.offsets[j] + digit as usize]
    }

    /// All candidates of slot `j`, in digit order.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    #[must_use]
    pub fn slot_actions(&self, j: usize) -> &[M::Action] {
        &self.arena[self.offsets[j]..self.offsets[j + 1]]
    }

    /// The digit of `action` within slot `j`, if it is a candidate.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    #[must_use]
    pub fn digit_of(&self, j: usize, action: &M::Action) -> Option<u32> {
        self.slot_actions(j)
            .iter()
            .position(|a| a == action)
            .map(|d| d as u32)
    }

    /// Product of the slot sizes, or [`SolveError::SpaceTooLarge`] on
    /// `u128` overflow.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::SpaceTooLarge`] when the product overflows.
    pub fn space_size(&self) -> Result<u128, SolveError> {
        self.sizes
            .iter()
            .try_fold(1u128, |acc, &s| acc.checked_mul(u128::from(s)))
            .ok_or(SolveError::SpaceTooLarge)
    }

    /// Writes the mixed-radix digits of profile index `idx` (last slot
    /// fastest, matching [`crate::game::ProfileIter`] order) into
    /// `digits`.
    ///
    /// # Panics
    ///
    /// Panics if `digits.len() != self.num_slots()`.
    pub fn decode(&self, mut idx: u128, digits: &mut [u32]) {
        assert_eq!(digits.len(), self.num_slots(), "digit buffer length");
        for j in (0..self.sizes.len()).rev() {
            let base = u128::from(self.sizes[j]);
            digits[j] = (idx % base) as u32;
            idx /= base;
        }
    }

    /// Overwrites `digits` with a uniformly random digit per slot
    /// (consuming exactly one `random_range` call per slot, in slot
    /// order — the historical random-start stream).
    ///
    /// # Panics
    ///
    /// Panics if `digits.len() != self.num_slots()`.
    pub fn random_digits(&self, rng: &mut StdRng, digits: &mut [u32]) {
        assert_eq!(digits.len(), self.num_slots(), "digit buffer length");
        for (j, digit) in digits.iter_mut().enumerate() {
            *digit = rng.random_range(0..self.sizes[j] as usize) as u32;
        }
    }

    /// Materializes the nested profile a digit assignment denotes (clones
    /// one action per slot — used only off the hot path: dynamics starts
    /// and fallbacks).
    ///
    /// # Panics
    ///
    /// Panics if `digits.len() != self.num_slots()` or any digit is out of
    /// range.
    #[must_use]
    pub fn materialize(&self, digits: &[u32]) -> Profile<M> {
        assert_eq!(digits.len(), self.num_slots(), "digit buffer length");
        let mut profile: Profile<M> = (0..self.num_agents).map(|_| Vec::new()).collect();
        for (j, &(i, _)) in self.slots.iter().enumerate() {
            profile[i].push(self.action(j, digits[j]).clone());
        }
        profile
    }
}

/// One step of an interim best-response scan at a slot, expressed in flat
/// digits.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SlotStep {
    /// No deviation improves on the played candidate by more than the
    /// workspace tolerance.
    Stable,
    /// Moving the slot's digit to this candidate improves the interim
    /// cost.
    Improve(u32),
    /// An improving action exists but is not in the candidate arena (only
    /// possible for models whose candidate enumeration under-covers the
    /// full action space, e.g. length-limited path sets); the caller must
    /// fall back to profile-based dynamics.
    Unrepresentable,
}

/// Thread-safe factory of [`EvalKernel`]s, returned by
/// [`BayesianModel::lower`]: expensive compiled tables live here, shared
/// by every sweep worker; each worker instantiates its own mutable kernel.
pub trait Lowered: Sync {
    /// Creates a fresh kernel (state is undefined until
    /// [`EvalKernel::seed`] is called).
    fn kernel(&self) -> Box<dyn EvalKernel + '_>;

    /// Called once before an exhaustive sweep: implementations may build
    /// amortizable tables here (worth it across millions of profiles,
    /// wasted on a dynamics run that evaluates a handful). The default
    /// does nothing.
    fn prepare_sweep(&self) {}
}

/// Order-independent equilibrium check over per-slot stability tests,
/// shared by the representation kernels: `is_equilibrium` is an AND over
/// independent slots, so evaluation order cannot change the result — the
/// slot that refuted the previous profile (`hint`) is checked first
/// (odometer neighbours usually fail at the same slot), then the rest in
/// slot order. Zero-weight slots are skipped; `hint` is updated on
/// failure.
pub fn stable_with_hint(
    num_slots: usize,
    weight: impl Fn(usize) -> f64,
    hint: &mut usize,
    mut slot_is_stable: impl FnMut(usize) -> bool,
) -> bool {
    if num_slots == 0 {
        return true;
    }
    let first = *hint;
    if weight(first) != 0.0 && !slot_is_stable(first) {
        return false;
    }
    for slot in 0..num_slots {
        if slot == first || weight(slot) == 0.0 {
            continue;
        }
        if !slot_is_stable(slot) {
            *hint = slot;
            return false;
        }
    }
    true
}

/// An incremental evaluator over a flat digit buffer.
///
/// The driving loop owns the digits; the kernel mirrors whatever internal
/// state it needs. The lifecycle is: one [`seed`](EvalKernel::seed) from a
/// full assignment, then any interleaving of single-digit
/// [`advance`](EvalKernel::advance)s and queries. Every query must agree
/// bit-for-bit with the trait-method evaluation of the current digits'
/// materialized profile (see the [module docs](self)).
pub trait EvalKernel {
    /// (Re)initializes the kernel's state from a full digit assignment.
    fn seed(&mut self, digits: &[u32]);

    /// Notifies the kernel that slot `slot` moved from digit `old` to
    /// `new`; all other digits are unchanged since the last
    /// seed/advance.
    fn advance(&mut self, slot: usize, old: u32, new: u32);

    /// Ex-ante social cost of the current digits.
    fn social_cost(&mut self) -> f64;

    /// Whether the current digits form a pure Bayesian equilibrium.
    fn is_equilibrium(&mut self) -> bool;

    /// An interim improvement at `slot` (over the **full** action space,
    /// like [`BayesianModel::slot_improvement`]), mapped to a candidate
    /// digit.
    fn slot_improvement(&mut self, slot: usize) -> SlotStep;
}

/// The fallback [`Lowered`]: no compiled tables, kernels route every query
/// through the model's trait methods on a maintained profile. This *is*
/// the pre-compiled evaluation strategy, kept both as the reference
/// implementation for parity tests and as the safety net for models
/// without a specialized kernel.
pub struct GenericLowered<'a, M: BayesianModel> {
    model: &'a M,
    space: &'a CompiledSpace<M>,
}

impl<'a, M: BayesianModel> GenericLowered<'a, M> {
    /// Pairs a model with its compiled space.
    #[must_use]
    pub fn new(model: &'a M, space: &'a CompiledSpace<M>) -> Self {
        GenericLowered { model, space }
    }
}

impl<M: BayesianModel> Lowered for GenericLowered<'_, M> {
    fn kernel(&self) -> Box<dyn EvalKernel + '_> {
        Box::new(GenericKernel {
            model: self.model,
            space: self.space,
            profile: self.space.materialize(&vec![0; self.space.num_slots()]),
        })
    }
}

/// The clone-based reference kernel of [`GenericLowered`].
struct GenericKernel<'a, M: BayesianModel> {
    model: &'a M,
    space: &'a CompiledSpace<M>,
    profile: Profile<M>,
}

impl<M: BayesianModel> EvalKernel for GenericKernel<'_, M> {
    fn seed(&mut self, digits: &[u32]) {
        for (j, &digit) in digits.iter().enumerate() {
            let (i, tau) = self.space.slot(j);
            self.profile[i][tau] = self.space.action(j, digit).clone();
        }
    }

    fn advance(&mut self, slot: usize, _old: u32, new: u32) {
        let (i, tau) = self.space.slot(slot);
        self.profile[i][tau] = self.space.action(slot, new).clone();
    }

    fn social_cost(&mut self) -> f64 {
        self.model.social_cost(&self.profile)
    }

    fn is_equilibrium(&mut self) -> bool {
        self.model.is_equilibrium(&self.profile)
    }

    fn slot_improvement(&mut self, slot: usize) -> SlotStep {
        let (i, tau) = self.space.slot(slot);
        match self.model.slot_improvement(i, tau, &self.profile) {
            None => SlotStep::Stable,
            Some(action) => match self.space.digit_of(slot, &action) {
                Some(digit) => SlotStep::Improve(digit),
                None => SlotStep::Unrepresentable,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bayesian::BayesianGame;
    use crate::game::MatrixFormGame;

    fn coordination_game() -> BayesianGame {
        let matcher =
            MatrixFormGame::from_fn(2, &[2, 2], |_, a| if a[0] == a[1] { 0.0 } else { 2.0 });
        let mismatcher =
            MatrixFormGame::from_fn(2, &[2, 2], |_, a| if a[0] != a[1] { 0.0 } else { 2.0 });
        BayesianGame::new(
            vec![1, 2],
            vec![(vec![0, 0], 0.5, matcher), (vec![0, 1], 0.5, mismatcher)],
        )
        .unwrap()
    }

    #[test]
    fn compile_flattens_slots_agent_major() {
        let game = coordination_game();
        let space = CompiledSpace::compile(&game).unwrap();
        assert_eq!(space.num_slots(), 3);
        assert_eq!(space.num_agents(), 2);
        assert_eq!(space.slot(0), (0, 0));
        assert_eq!(space.slot(1), (1, 0));
        assert_eq!(space.slot(2), (1, 1));
        assert_eq!(space.slot_size(0), 2);
        assert_eq!(space.space_size().unwrap(), 8);
        assert_eq!(*space.action(2, 1), 1);
        assert_eq!(space.slot_actions(1), &[0, 1]);
        assert_eq!(space.digit_of(0, &1), Some(1));
        assert_eq!(space.digit_of(0, &9), None);
    }

    #[test]
    fn decode_matches_profile_iter_order() {
        let game = coordination_game();
        let space = CompiledSpace::compile(&game).unwrap();
        let mut digits = vec![0u32; 3];
        let mut seen = Vec::new();
        for idx in 0..space.space_size().unwrap() {
            space.decode(idx, &mut digits);
            seen.push(digits.clone());
        }
        let expected: Vec<Vec<u32>> = crate::game::ProfileIter::new(vec![2, 2, 2])
            .map(|p| p.into_iter().map(|d| d as u32).collect())
            .collect();
        assert_eq!(seen, expected);
    }

    #[test]
    fn materialize_round_trips_digits() {
        let game = coordination_game();
        let space = CompiledSpace::compile(&game).unwrap();
        let digits = vec![1u32, 0, 1];
        let profile = space.materialize(&digits);
        assert_eq!(profile, vec![vec![1], vec![0, 1]]);
    }

    #[test]
    fn generic_kernel_matches_trait_methods() {
        let game = coordination_game();
        let space = CompiledSpace::compile(&game).unwrap();
        let lowered = GenericLowered::new(&game, &space);
        let mut kernel = lowered.kernel();
        let mut digits = vec![0u32, 0, 0];
        kernel.seed(&digits);
        for idx in 0..space.space_size().unwrap() {
            space.decode(idx, &mut digits);
            kernel.seed(&digits);
            let profile = space.materialize(&digits);
            assert_eq!(
                kernel.social_cost().to_bits(),
                game.social_cost(&profile).to_bits()
            );
            assert_eq!(
                kernel.is_equilibrium(),
                game.is_bayesian_equilibrium(&profile)
            );
        }
        // Advance from (0,0,0) to (0,0,1) and re-check.
        kernel.seed(&[0, 0, 0]);
        kernel.advance(2, 0, 1);
        let profile = space.materialize(&[0, 0, 1]);
        assert_eq!(
            kernel.social_cost().to_bits(),
            game.social_cost(&profile).to_bits()
        );
    }

    #[test]
    fn generic_slot_improvement_maps_to_digits() {
        let game = coordination_game();
        let space = CompiledSpace::compile(&game).unwrap();
        let lowered = GenericLowered::new(&game, &space);
        let mut kernel = lowered.kernel();
        // Agent 1 plays 0 at both types; her type-1 slot wants to deviate
        // to 1 (the mismatcher state).
        kernel.seed(&[0, 0, 0]);
        assert_eq!(kernel.slot_improvement(2), SlotStep::Improve(1));
        kernel.advance(2, 0, 1);
        assert_eq!(kernel.slot_improvement(2), SlotStep::Stable);
    }
}
