//! Exact potentials and Observation 2.1.
//!
//! A function `q_t` is an exact potential for the state-`t` game when every
//! unilateral deviation changes the deviator's cost and the potential by
//! the same amount. Observation 2.1 of the paper: if every underlying game
//! has a potential, then `Q(s) = Σ_t p(t)·q_t(s(t))` is a *Bayesian*
//! potential, and its minimizer is a pure Bayesian equilibrium — the
//! existence argument behind every equilibrium in this workspace.

use std::fmt;

use bi_util::approx_eq;

use crate::bayesian::{BayesianGame, StrategyProfile};
use crate::game::{EnumerationError, MatrixFormGame, ProfileIter};

/// A dense table holding one value per joint action profile, used to pass
/// potential functions around.
///
/// # Examples
///
/// ```
/// use bi_core::potential::PotentialTable;
///
/// let t = PotentialTable::from_fn(&[2, 2], |a| (a[0] + a[1]) as f64);
/// assert_eq!(t.value(&[1, 1]), 2.0);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct PotentialTable {
    counts: Vec<usize>,
    strides: Vec<usize>,
    values: Vec<f64>,
}

impl PotentialTable {
    /// Tabulates `f` over all joint profiles of the given action space.
    ///
    /// # Panics
    ///
    /// Panics if the space is empty or exceeds the enumeration limit.
    #[must_use]
    pub fn from_fn<F: FnMut(&[usize]) -> f64>(counts: &[usize], mut f: F) -> Self {
        let mut strides = vec![1usize; counts.len()];
        for i in (0..counts.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * counts[i + 1];
        }
        let mut values = Vec::new();
        for p in ProfileIter::new(counts.to_vec()) {
            values.push(f(&p));
        }
        assert!(!values.is_empty(), "empty action space");
        PotentialTable {
            counts: counts.to_vec(),
            strides,
            values,
        }
    }

    /// The potential value at a joint profile.
    ///
    /// # Panics
    ///
    /// Panics if the profile shape or any index is out of range.
    #[must_use]
    pub fn value(&self, profile: &[usize]) -> f64 {
        assert_eq!(profile.len(), self.counts.len(), "profile length");
        let idx: usize = profile
            .iter()
            .zip(&self.counts)
            .zip(&self.strides)
            .map(|((&a, &c), &s)| {
                assert!(a < c, "index out of range");
                a * s
            })
            .sum();
        self.values[idx]
    }

    /// The action space this table is defined over.
    #[must_use]
    pub fn action_counts(&self) -> &[usize] {
        &self.counts
    }
}

/// A witnessed failure of the exact-potential property.
#[derive(Clone, Debug, PartialEq)]
pub struct PotentialViolation {
    /// The profile deviated from.
    pub profile: Vec<usize>,
    /// The deviating agent.
    pub agent: usize,
    /// The action deviated to.
    pub deviation: usize,
    /// Cost difference `C_i(a) − C_i(a₋ᵢ, a'_i)`.
    pub cost_delta: f64,
    /// Potential difference `q(a) − q(a₋ᵢ, a'_i)`.
    pub potential_delta: f64,
}

impl fmt::Display for PotentialViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "agent {} deviating {:?} → action {}: cost Δ {} but potential Δ {}",
            self.agent, self.profile, self.deviation, self.cost_delta, self.potential_delta
        )
    }
}

impl std::error::Error for PotentialViolation {}

/// Verifies that `phi` is an exact potential of `game` by checking every
/// unilateral deviation.
///
/// Deviations whose cost difference involves `∞ − ∞` are skipped (NCS
/// games have infinite costs on infeasible actions; the potential property
/// is only meaningful on finite comparisons).
///
/// # Errors
///
/// Returns the first [`PotentialViolation`] found.
pub fn verify_exact_potential(
    game: &MatrixFormGame,
    phi: &PotentialTable,
) -> Result<(), PotentialViolation> {
    for profile in game.profiles() {
        let mut work = profile.clone();
        for i in 0..game.num_agents() {
            let base_cost = game.cost(i, &profile);
            let base_phi = phi.value(&profile);
            for a in 0..game.num_actions(i) {
                if a == profile[i] {
                    continue;
                }
                work[i] = a;
                let cost_delta = base_cost - game.cost(i, &work);
                let potential_delta = base_phi - phi.value(&work);
                if cost_delta.is_nan() || potential_delta.is_nan() {
                    continue; // ∞ − ∞: no information
                }
                if cost_delta.is_infinite() && potential_delta.is_infinite() {
                    if cost_delta.signum() == potential_delta.signum() {
                        continue;
                    }
                } else if approx_eq(cost_delta, potential_delta) {
                    continue;
                }
                return Err(PotentialViolation {
                    profile: profile.clone(),
                    agent: i,
                    deviation: a,
                    cost_delta,
                    potential_delta,
                });
            }
            work[i] = profile[i];
        }
    }
    Ok(())
}

/// The Bayesian potential of Observation 2.1: `Q(s) = Σ_t p(t)·q_t(s(t))`,
/// where `potentials[idx]` is the potential of the `idx`-th support state.
///
/// # Panics
///
/// Panics if `potentials` does not have one entry per support state.
#[must_use]
pub fn expected_potential(
    game: &BayesianGame,
    potentials: &[PotentialTable],
    s: &StrategyProfile,
) -> f64 {
    assert_eq!(
        potentials.len(),
        game.support_len(),
        "one potential per support state"
    );
    let mut total = 0.0;
    for (idx, potential) in potentials.iter().enumerate() {
        let (types, prob, _) = game.state(idx);
        let action: Vec<usize> = s.iter().zip(types).map(|(si, &t)| si[t]).collect();
        total += prob * potential.value(&action);
    }
    total
}

/// Finds the strategy profile minimizing the Bayesian potential of
/// Observation 2.1. The result is always a pure Bayesian equilibrium (the
/// observation's conclusion, verified in this crate's tests).
///
/// # Errors
///
/// Returns an [`EnumerationError`] when the strategy space is too large.
///
/// # Panics
///
/// Panics if `potentials` does not match the game's support.
pub fn potential_minimizer(
    game: &BayesianGame,
    potentials: &[PotentialTable],
) -> Result<(StrategyProfile, f64), EnumerationError> {
    let mut best: Option<(StrategyProfile, f64)> = None;
    for s in game.strategies()? {
        let q = expected_potential(game, potentials, &s);
        if best.as_ref().is_none_or(|(_, bq)| q < *bq) {
            best = Some((s, q));
        }
    }
    Ok(best.expect("strategy space is never empty"))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A simple congestion game: two agents pick one of two resources;
    /// a resource used by `n` agents costs each user `n`.
    fn congestion() -> (MatrixFormGame, PotentialTable) {
        let cost = |i: usize, a: &[usize]| {
            let load = a.iter().filter(|&&x| x == a[i]).count() as f64;
            load
        };
        let game = MatrixFormGame::from_fn(2, &[2, 2], cost);
        // Rosenthal potential: Σ_r Σ_{j=1..load(r)} j.
        let phi = PotentialTable::from_fn(&[2, 2], |a| {
            (0..2)
                .map(|r| {
                    let load = a.iter().filter(|&&x| x == r).count();
                    (1..=load).map(|j| j as f64).sum::<f64>()
                })
                .sum()
        });
        (game, phi)
    }

    #[test]
    fn rosenthal_potential_verifies() {
        let (game, phi) = congestion();
        verify_exact_potential(&game, &phi).unwrap();
    }

    #[test]
    fn broken_potential_is_caught() {
        let (game, _) = congestion();
        let bad = PotentialTable::from_fn(&[2, 2], |a| (a[0] * 2 + a[1]) as f64);
        let err = verify_exact_potential(&game, &bad).unwrap_err();
        assert!(err.to_string().contains("agent"));
    }

    #[test]
    fn table_round_trips_values() {
        let t = PotentialTable::from_fn(&[3, 2], |a| (a[0] * 10 + a[1]) as f64);
        assert_eq!(t.value(&[2, 1]), 21.0);
        assert_eq!(t.action_counts(), &[3, 2]);
    }

    #[test]
    fn observation_2_1_minimizer_is_bayesian_equilibrium() {
        // Bayesian congestion game: agent 1's type flips which resource is
        // "congestible" — state games share action spaces.
        let (g0, phi0) = congestion();
        let g1 = MatrixFormGame::from_fn(2, &[2, 2], |i, a| {
            // Same congestion game with resource labels swapped for agent 0.
            let flipped = [1 - a[0], a[1]];
            let load = flipped.iter().filter(|&&x| x == flipped[i]).count() as f64;
            load
        });
        let phi1 = PotentialTable::from_fn(&[2, 2], |a| {
            let flipped = [1 - a[0], a[1]];
            (0..2)
                .map(|r| {
                    let load = flipped.iter().filter(|&&x| x == r).count();
                    (1..=load).map(|j| j as f64).sum::<f64>()
                })
                .sum()
        });
        verify_exact_potential(&g1, &phi1).unwrap();
        let game = BayesianGame::new(
            vec![1, 2],
            vec![(vec![0, 0], 0.6, g0), (vec![0, 1], 0.4, g1)],
        )
        .unwrap();
        let (s, q) = potential_minimizer(&game, &[phi0, phi1]).unwrap();
        assert!(game.is_bayesian_equilibrium(&s), "minimizer {s:?} (Q={q})");
    }

    #[test]
    fn expected_potential_tracks_deviation_differences() {
        // For a Bayesian potential Q built per Observation 2.1, a
        // unilateral strategy change must shift Q by the ex-ante cost
        // difference.
        let (g0, phi0) = congestion();
        let game = BayesianGame::new(vec![1, 1], vec![(vec![0, 0], 1.0, g0)]).unwrap();
        let potentials = [phi0];
        let s1 = vec![vec![0], vec![0]];
        let s2 = vec![vec![0], vec![1]]; // agent 1 deviates
        let dq = expected_potential(&game, &potentials, &s1)
            - expected_potential(&game, &potentials, &s2);
        let dc = game.expected_cost(1, &s1) - game.expected_cost(1, &s2);
        assert!((dq - dc).abs() < 1e-12);
    }
}
