//! The unified solver engine: one configurable entry point computing the
//! six ignorance measures for **any** [`BayesianModel`].
//!
//! A [`Solver`] is built via [`SolverBuilder`] from three orthogonal
//! knobs:
//!
//! * a [`Backend`] — [`Backend::ExhaustiveEnum`] (exact, the historical
//!   behavior of `measures()`), [`Backend::BestResponseDynamics`]
//!   (equilibria via seeded restarts of interim best-response dynamics),
//!   or [`Backend::MonteCarloSampling`] (seeded uniform profile sampling
//!   plus dynamics, for games whose strategy space exceeds the budget);
//! * a [`Budget`] — `max_profiles` gates exhaustive enumeration,
//!   `max_iterations` caps dynamics sweeps;
//! * a thread count — the exhaustive sweep runs on a **work-stealing**
//!   scheduler: the profile range is cut into blocks that idle workers
//!   claim from a shared atomic counter, each worker reuses one
//!   incremental kernel across every block it steals, and the per-block
//!   results are merged in block order, so reports are bit-for-bit
//!   identical across any thread count (sweeps below
//!   [`PARALLEL_SWEEP_MIN_PROFILES`] fall back to a purely sequential
//!   sweep so small games never pay pool overhead);
//! * a [`SymmetryMode`] — under [`SymmetryMode::Auto`] the solver
//!   detects interchangeable agents ([`crate::symmetry`]) and sweeps only
//!   canonical orbit representatives: identical measures, orders of
//!   magnitude fewer evaluations on symmetric games, with the reduction
//!   reported in [`SolveReport::orbit`].
//!
//! Every backend evaluates profiles through the **compiled evaluation
//! layer** ([`crate::compiled`]): the solver lowers the model once into a
//! flat `u32`-indexed candidate arena plus a per-representation
//! incremental [`EvalKernel`], each worker
//! seeds its kernel from its chunk's starting digits, and the odometer
//! then mutates a single digit buffer with zero action clones while the
//! kernel delta-updates its cost state. Kernels are bit-for-bit faithful
//! to the trait-method evaluation, so this is purely a performance layer.
//!
//! Every solve returns a structured [`SolveReport`]; failures share the
//! single [`SolveError`] type.
//!
//! # Examples
//!
//! ```
//! use bi_core::bayesian::BayesianGame;
//! use bi_core::game::MatrixFormGame;
//! use bi_core::solve::{Backend, Solver};
//!
//! let g0 = MatrixFormGame::from_fn(1, &[2], |_, a| if a[0] == 0 { 1.0 } else { 2.0 });
//! let g1 = MatrixFormGame::from_fn(1, &[2], |_, a| if a[0] == 1 { 1.0 } else { 2.0 });
//! let game = BayesianGame::new(
//!     vec![2],
//!     vec![(vec![0], 0.5, g0), (vec![1], 0.5, g1)],
//! ).unwrap();
//!
//! let report = Solver::builder()
//!     .backend(Backend::ExhaustiveEnum)
//!     .threads(2)
//!     .build()
//!     .solve(&game)
//!     .unwrap();
//! assert!(report.exact);
//! assert_eq!(report.profiles_evaluated, 4);
//! assert_eq!(report.measures.opt_p, report.measures.opt_c);
//! ```

use std::error::Error;
use std::fmt;

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::compiled::{CompiledSpace, EvalKernel, Lowered, SlotStep};
use crate::game::MAX_ENUMERATION;
use crate::measures::Measures;
use crate::model::BayesianModel;
use crate::symmetry::{Symmetry, SymmetryMode};

/// Smallest sweep (in visited profiles) that uses the parallel
/// work-stealing scheduler; anything smaller runs sequentially on the
/// calling thread. Thread-pool spawn/join costs on the order of 100 µs —
/// comparable to sweeping this many profiles outright — which is how a
/// 4-thread sweep of a small game ends up *slower* than 1 thread.
pub const PARALLEL_SWEEP_MIN_PROFILES: u128 = 1 << 14;

/// Unified error type of the solver engine.
#[derive(Debug)]
#[non_exhaustive]
pub enum SolveError {
    /// The strategy-space size overflowed `u128` — no finite budget can
    /// admit it.
    SpaceTooLarge,
    /// Exhaustive enumeration would exceed the budget; switch to a
    /// sampling backend or raise [`Budget::max_profiles`].
    BudgetExceeded {
        /// Number of profiles exhaustive enumeration would visit.
        required: u128,
        /// The configured cap it exceeds.
        max_profiles: u128,
    },
    /// No pure Bayesian equilibrium was found (for approximate backends:
    /// within the sampled starts), so `best-eqP`/`worst-eqP` are
    /// undefined.
    NoEquilibrium,
    /// An underlying complete-information game has no pure Nash
    /// equilibrium, so `best-eqC`/`worst-eqC` are undefined.
    NoStateEquilibrium {
        /// The support-state index of the equilibrium-free game.
        state: usize,
    },
    /// A model-specific failure (e.g. truncated path enumeration),
    /// preserved as the error [`source`](Error::source).
    Model(Box<dyn Error + Send + Sync>),
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::SpaceTooLarge => {
                write!(f, "strategy-space size overflows u128")
            }
            SolveError::BudgetExceeded {
                required,
                max_profiles,
            } => write!(
                f,
                "exhaustive enumeration needs {required} profiles (budget {max_profiles})"
            ),
            SolveError::NoEquilibrium => {
                write!(f, "no pure Bayesian equilibrium found")
            }
            SolveError::NoStateEquilibrium { state } => {
                write!(f, "underlying game {state} has no pure Nash equilibrium")
            }
            SolveError::Model(e) => write!(f, "model error: {e}"),
        }
    }
}

impl Error for SolveError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SolveError::Model(e) => Some(e.as_ref()),
            _ => None,
        }
    }
}

/// Resource guard for a solve: how much exhaustive enumeration to allow
/// and how long dynamics may run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Budget {
    /// Maximum number of profiles [`Backend::ExhaustiveEnum`] may visit;
    /// larger spaces return [`SolveError::BudgetExceeded`].
    pub max_profiles: u128,
    /// Maximum number of full best-response sweeps per dynamics run
    /// (used by the [`Backend::BestResponseDynamics`] and
    /// [`Backend::MonteCarloSampling`] backends).
    pub max_iterations: u64,
}

impl Default for Budget {
    /// `max_profiles` defaults to the workspace enumeration limit
    /// [`MAX_ENUMERATION`]; `max_iterations` to 256 sweeps.
    fn default() -> Self {
        Budget {
            max_profiles: MAX_ENUMERATION,
            max_iterations: 256,
        }
    }
}

/// The algorithm a [`Solver`] uses for the partial-information side
/// (`optP`, `best-eqP`, `worst-eqP`). The complete-information side is
/// always computed exactly per support state.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Backend {
    /// Exact exhaustive enumeration of the candidate strategy space —
    /// the historical behavior of `measures()`. Fails with
    /// [`SolveError::BudgetExceeded`] beyond [`Budget::max_profiles`].
    #[default]
    ExhaustiveEnum,
    /// Interim best-response dynamics from a deterministic start plus
    /// `restarts` seeded random restarts. Reported equilibria are genuine
    /// (each is verified exactly), but the extrema are inner
    /// approximations: `best-eqP` from above, `worst-eqP` from below,
    /// `optP` from above.
    BestResponseDynamics {
        /// Number of additional random restarts after the deterministic
        /// first run.
        restarts: u32,
        /// Seed of the restart stream (deterministic per seed).
        seed: u64,
    },
    /// Seeded uniform sampling of `samples` strategy profiles, each also
    /// used as a start for best-response dynamics. Never *errors* on the
    /// budget — this is the backend for games whose strategy space exceeds
    /// [`Budget::max_profiles`] — but the number of sampled starts is
    /// capped at `min(samples, max_profiles)` (never below one start when
    /// any were requested), with the truncation recorded in
    /// [`SolveReport::sample_cap`]. Same inner-approximation guarantees
    /// as [`Backend::BestResponseDynamics`].
    MonteCarloSampling {
        /// Number of uniform profile samples.
        samples: u32,
        /// Seed of the sample stream (deterministic per seed).
        seed: u64,
    },
}

/// Orbit-reduction statistics of a symmetry-reduced exhaustive sweep
/// (see [`crate::symmetry`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OrbitStats {
    /// Canonical orbit representatives the sweep evaluated (equals
    /// [`SolveReport::profiles_evaluated`] for a reduced sweep).
    pub orbits_evaluated: u128,
    /// Profiles of the full, unreduced strategy space those orbits
    /// represent.
    pub profiles_represented: u128,
    /// Order of the detected symmetry group (`Π |class|!`), saturating
    /// at `u128::MAX`.
    pub group_order: u128,
}

/// Structured outcome of a [`Solver::solve`] call.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SolveReport {
    /// The six ignorance measures.
    pub measures: Measures,
    /// The backend that produced the partial-information side.
    pub method: Backend,
    /// Number of strategy profiles whose social cost was evaluated.
    pub profiles_evaluated: u128,
    /// Whether the partial-information side is exact. `true` only for
    /// [`Backend::ExhaustiveEnum`]; approximate backends report genuine
    /// equilibria but possibly non-extremal ones.
    pub exact: bool,
    /// `Some(effective)` when a [`Backend::MonteCarloSampling`] request
    /// asked for more samples than [`Budget::max_profiles`] allows and was
    /// truncated to `effective` starts; `None` otherwise.
    pub sample_cap: Option<u64>,
    /// `Some(stats)` when an exhaustive sweep under
    /// [`SymmetryMode::Auto`] found non-trivial agent symmetry and swept
    /// only canonical orbit representatives; `None` otherwise. The
    /// measures are identical either way — this records how much work the
    /// reduction saved.
    pub orbit: Option<OrbitStats>,
}

/// The full configuration of a [`Solver`] as plain data — the wire form
/// used by the solve service (`bi-service`): backend, budget, and thread
/// count. Convert with [`Solver::config`] / [`Solver::from_config`].
///
/// # Examples
///
/// ```
/// use bi_core::solve::{Solver, SolverConfig};
///
/// let config = SolverConfig { threads: 4, ..SolverConfig::default() };
/// let solver = Solver::from_config(config);
/// assert_eq!(solver.config(), config);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SolverConfig {
    /// The algorithm of the partial-information side.
    pub backend: Backend,
    /// The resource guard.
    pub budget: Budget,
    /// Worker threads for the exhaustive sweep (`0` = one per core).
    pub threads: usize,
    /// Whether the exhaustive sweep reduces by agent symmetry
    /// ([`SymmetryMode::Off`] by default).
    pub symmetry: SymmetryMode,
}

impl Default for SolverConfig {
    /// Matches [`Solver::default`]: exhaustive, default budget, single
    /// thread.
    fn default() -> Self {
        Solver::default().config()
    }
}

impl From<SolverConfig> for Solver {
    fn from(config: SolverConfig) -> Self {
        Solver::from_config(config)
    }
}

/// Builder for [`Solver`] — see the [module docs](self) for the knobs.
///
/// # Examples
///
/// ```
/// use bi_core::solve::{Backend, Budget, Solver};
///
/// let solver = Solver::builder()
///     .backend(Backend::MonteCarloSampling { samples: 128, seed: 7 })
///     .budget(Budget { max_profiles: 10_000, max_iterations: 64 })
///     .threads(0) // 0 = one worker per available core
///     .build();
/// let _ = solver;
/// ```
#[derive(Clone, Copy, Debug)]
pub struct SolverBuilder {
    backend: Backend,
    budget: Budget,
    threads: usize,
    symmetry: SymmetryMode,
}

impl Default for SolverBuilder {
    /// Exhaustive backend, default [`Budget`], one thread, no symmetry
    /// reduction — the exact historical `measures()` configuration.
    fn default() -> Self {
        SolverBuilder {
            backend: Backend::default(),
            budget: Budget::default(),
            threads: 1,
            symmetry: SymmetryMode::Off,
        }
    }
}

impl SolverBuilder {
    /// Selects the [`Backend`].
    #[must_use]
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Sets the whole [`Budget`].
    #[must_use]
    pub fn budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Sets [`Budget::max_profiles`] only.
    #[must_use]
    pub fn max_profiles(mut self, max_profiles: u128) -> Self {
        self.budget.max_profiles = max_profiles;
        self
    }

    /// Sets [`Budget::max_iterations`] only.
    #[must_use]
    pub fn max_iterations(mut self, max_iterations: u64) -> Self {
        self.budget.max_iterations = max_iterations;
        self
    }

    /// Number of worker threads for the exhaustive sweep. `1` (the
    /// default) runs inline; `0` means one worker per available core.
    /// Results are identical regardless of the thread count.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Whether the exhaustive sweep reduces by agent symmetry (see
    /// [`crate::symmetry`]). [`SymmetryMode::Auto`] produces bit-for-bit
    /// identical measures while evaluating only one canonical
    /// representative per orbit; the default is [`SymmetryMode::Off`].
    #[must_use]
    pub fn symmetry(mut self, symmetry: SymmetryMode) -> Self {
        self.symmetry = symmetry;
        self
    }

    /// Finalizes the configuration.
    #[must_use]
    pub fn build(self) -> Solver {
        Solver {
            backend: self.backend,
            budget: self.budget,
            threads: self.threads,
            symmetry: self.symmetry,
        }
    }
}

/// The configurable measure-solving engine. Construct via
/// [`Solver::builder`]; [`Solver::default`] reproduces the historical
/// `measures()` behavior exactly (exhaustive, workspace budget, single
/// thread).
#[derive(Clone, Copy, Debug)]
pub struct Solver {
    backend: Backend,
    budget: Budget,
    threads: usize,
    symmetry: SymmetryMode,
}

impl Default for Solver {
    fn default() -> Self {
        SolverBuilder::default().build()
    }
}

impl Solver {
    /// Starts building a solver.
    #[must_use]
    pub fn builder() -> SolverBuilder {
        SolverBuilder::default()
    }

    /// The configured backend.
    #[must_use]
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// The configured budget.
    #[must_use]
    pub fn budget(&self) -> Budget {
        self.budget
    }

    /// The configured worker-thread count (`0` = one per core).
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The configured symmetry mode.
    #[must_use]
    pub fn symmetry(&self) -> SymmetryMode {
        self.symmetry
    }

    /// The full configuration as plain data (the wire form).
    #[must_use]
    pub fn config(&self) -> SolverConfig {
        SolverConfig {
            backend: self.backend,
            budget: self.budget,
            threads: self.threads,
            symmetry: self.symmetry,
        }
    }

    /// Builds a solver from its plain-data configuration.
    #[must_use]
    pub fn from_config(config: SolverConfig) -> Solver {
        Solver {
            backend: config.backend,
            budget: config.budget,
            threads: config.threads,
            symmetry: config.symmetry,
        }
    }

    /// Computes the six measures of `model`.
    ///
    /// # Errors
    ///
    /// * [`SolveError::SpaceTooLarge`] — the candidate space size
    ///   overflows `u128` (exhaustive backend only; sampling backends
    ///   never size the space);
    /// * [`SolveError::BudgetExceeded`] — exhaustive enumeration over
    ///   budget (use a sampling backend instead);
    /// * [`SolveError::NoEquilibrium`] /
    ///   [`SolveError::NoStateEquilibrium`] — the equilibrium-side
    ///   measures are undefined;
    /// * [`SolveError::Model`] — a model-specific failure (e.g.
    ///   truncated path enumeration).
    pub fn solve<M: BayesianModel>(&self, model: &M) -> Result<SolveReport, SolveError> {
        let space = CompiledSpace::compile(model)?;
        let mut sample_cap = None;
        let mut orbit = None;
        let stats = match self.backend {
            Backend::ExhaustiveEnum => {
                // Only the exhaustive sweep needs the space size; the
                // sampling backends must work on spaces too large to even
                // size in `u128`.
                let size = space.space_size()?;
                // Under `Auto`, non-trivial agent symmetry shrinks the
                // sweep domain to canonical orbit representatives; the
                // budget then gates the work actually done (the orbit
                // count), still exactly and before any sweeping.
                //
                // Detection itself costs up-front verification work
                // (`agents_interchangeable` per candidate pair), so Auto
                // first weighs that against the unreduced sweep: when
                // the estimated check bill exceeds the full sweep, it
                // falls back to sweeping the whole space — unless the
                // full sweep is over budget anyway, in which case the
                // reduction is the only path to an answer and detection
                // always runs.
                let symmetry = match self.symmetry {
                    SymmetryMode::Off => None,
                    SymmetryMode::Auto => {
                        let check_bill = model
                            .interchangeable_check_cost()
                            .saturating_mul(model.num_agents().saturating_sub(1) as u128);
                        if check_bill < size || size > self.budget.max_profiles {
                            Some(Symmetry::detect(model, &space)).filter(|sym| !sym.is_trivial())
                        } else {
                            None
                        }
                    }
                };
                let sweep_size = match &symmetry {
                    None => size,
                    Some(sym) => {
                        let orbits = sym.orbit_count()?;
                        orbit = Some(OrbitStats {
                            orbits_evaluated: orbits,
                            profiles_represented: size,
                            group_order: sym.group_order_saturating(),
                        });
                        orbits
                    }
                };
                if sweep_size > self.budget.max_profiles {
                    return Err(SolveError::BudgetExceeded {
                        required: sweep_size,
                        max_profiles: self.budget.max_profiles,
                    });
                }
                self.exhaustive(model, &space, symmetry.as_ref(), sweep_size)
            }
            Backend::BestResponseDynamics { restarts, seed } => self.dynamics(
                model,
                &space,
                Starts::DeterministicThenRandom,
                u64::from(restarts) + 1,
                seed,
            ),
            Backend::MonteCarloSampling { samples, seed } => {
                // The profile budget caps the sampled starts (it used to be
                // silently ignored here); the truncation is reported. The
                // floor of one start (when any were requested) keeps a
                // zero budget from masquerading as "no equilibrium".
                let requested = u128::from(samples);
                let effective = requested
                    .min(self.budget.max_profiles)
                    .max(u128::from(samples.min(1))) as u64;
                if u128::from(effective) < requested {
                    sample_cap = Some(effective);
                }
                self.dynamics(model, &space, Starts::Random, effective, seed)
            }
        };
        if !stats.found_equilibrium {
            return Err(SolveError::NoEquilibrium);
        }
        let ci = model.complete_info()?;
        Ok(SolveReport {
            measures: Measures {
                opt_p: stats.opt_p,
                best_eq_p: stats.best_eq_p,
                worst_eq_p: stats.worst_eq_p,
                opt_c: ci.opt_c,
                best_eq_c: ci.best_eq_c,
                worst_eq_c: ci.worst_eq_c,
            },
            method: self.backend,
            profiles_evaluated: stats.evaluated,
            exact: matches!(self.backend, Backend::ExhaustiveEnum),
            sample_cap,
            orbit,
        })
    }

    /// Solves a batch of games of one representation, distributing the
    /// **games** across the configured worker threads (each individual
    /// game is then solved single-threaded — one level of parallelism,
    /// no oversubscription). This is the shared entry point of batch
    /// serving (`POST /solve_batch` in `bi-service`) and the CLI drivers.
    ///
    /// Results are identical to calling [`Solver::solve`] on each game in
    /// order: per-game solving is deterministic, and each result lands at
    /// its game's index.
    ///
    /// # Examples
    ///
    /// ```
    /// use bi_core::random_games::random_bayesian_potential_game;
    /// use bi_core::solve::Solver;
    ///
    /// let (g0, _) = random_bayesian_potential_game(&[2, 2], &[2, 2], 2, 1);
    /// let (g1, _) = random_bayesian_potential_game(&[2, 2], &[2, 2], 2, 2);
    /// let solver = Solver::builder().threads(2).build();
    /// let reports = solver.solve_many(&[&g0, &g1]);
    /// assert_eq!(reports.len(), 2);
    /// assert_eq!(
    ///     reports[0].as_ref().unwrap().measures,
    ///     solver.solve(&g0).unwrap().measures
    /// );
    /// ```
    pub fn solve_many<M: BayesianModel>(
        &self,
        models: &[&M],
    ) -> Vec<Result<SolveReport, SolveError>> {
        // Fast path: 0 or 1 games never pay for the pool — no
        // `available_parallelism` probe, no per-slot mutexes, no scoped
        // threads (batch endpoints routinely submit single-game batches).
        if models.len() <= 1 {
            return models.iter().map(|m| self.solve(*m)).collect();
        }
        let workers = effective_threads(self.threads, models.len() as u128);
        if workers <= 1 {
            return models.iter().map(|m| self.solve(*m)).collect();
        }
        // Games go wide, so each solve runs inline — same scoped-thread
        // plumbing as the exhaustive sweep, one level up.
        let per_game = Solver {
            threads: 1,
            ..*self
        };
        let next = std::sync::atomic::AtomicUsize::new(0);
        let results: Vec<std::sync::Mutex<Option<Result<SolveReport, SolveError>>>> =
            models.iter().map(|_| std::sync::Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    let Some(model) = models.get(i) else { break };
                    *results[i].lock().expect("result slot poisoned") =
                        Some(per_game.solve(*model));
                });
            }
        });
        results
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot poisoned")
                    .expect("every index was claimed by a worker")
            })
            .collect()
    }

    /// Exhaustive sweep over the flat profile space (`symmetry: None`) or
    /// the canonical orbit domain (`symmetry: Some`), on the
    /// work-stealing scheduler when the domain is large enough.
    ///
    /// The model is lowered once. Small domains (below
    /// [`PARALLEL_SWEEP_MIN_PROFILES`]) or single-worker configurations
    /// sweep sequentially on the calling thread. Otherwise the index
    /// range is cut into blocks; idle workers claim the next block from a
    /// shared atomic counter, re-seeding one long-lived kernel per block
    /// they steal. Per-block results are merged in block-index order
    /// after the join, so the result is bit-for-bit independent of which
    /// worker claimed what.
    fn exhaustive<M: BayesianModel>(
        &self,
        model: &M,
        space: &CompiledSpace<M>,
        symmetry: Option<&Symmetry>,
        size: u128,
    ) -> SweepStats {
        let lowered = model.lower(space);
        let lowered: &dyn Lowered = &*lowered;
        lowered.prepare_sweep();
        let workers = effective_threads(self.threads, size);
        if workers <= 1 || size < PARALLEL_SWEEP_MIN_PROFILES {
            let mut kernel = lowered.kernel();
            let mut digits = vec![0u32; space.num_slots()];
            return sweep_block(space, symmetry, kernel.as_mut(), &mut digits, 0, size);
        }
        // Block sizing: enough blocks that an unlucky worker (stalled on
        // a slow block or a busy core) never strands more than ~1/32 of
        // the range, but blocks long enough to amortize the O(slots)
        // block decode + kernel re-seed.
        let block_len = size
            .div_ceil(workers as u128 * STEAL_BLOCKS_PER_WORKER)
            .max(MIN_STEAL_BLOCK);
        let num_blocks =
            u64::try_from(size.div_ceil(block_len)).expect("block count bounded by workers * 32");
        let next_block = std::sync::atomic::AtomicU64::new(0);
        std::thread::scope(|scope| {
            let next_block = &next_block;
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(move || {
                        let mut kernel = lowered.kernel();
                        let mut digits = vec![0u32; space.num_slots()];
                        let mut claimed: Vec<(u64, SweepStats)> = Vec::new();
                        loop {
                            let b = next_block.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            if b >= num_blocks {
                                break;
                            }
                            let start = u128::from(b) * block_len;
                            let count = block_len.min(size - start);
                            let stats = sweep_block(
                                space,
                                symmetry,
                                kernel.as_mut(),
                                &mut digits,
                                start,
                                count,
                            );
                            claimed.push((b, stats));
                        }
                        claimed
                    })
                })
                .collect();
            let mut blocks: Vec<(u64, SweepStats)> = handles
                .into_iter()
                .flat_map(|h| h.join().expect("solver worker panicked"))
                .collect();
            // Deterministic merge: fold in block order, whatever the
            // claim interleaving was.
            blocks.sort_unstable_by_key(|&(b, _)| b);
            blocks
                .into_iter()
                .map(|(_, stats)| stats)
                .fold(SweepStats::new(), SweepStats::merge)
        })
    }

    /// Shared driver of the two dynamics-based backends: evaluate each
    /// start, run best-response dynamics from it, and record any
    /// equilibrium reached. The best-response scans reuse the same
    /// incremental kernel state the sweep uses; if a best response falls
    /// outside the candidate arena (possible only with under-covering
    /// candidate enumerations), the affected run falls back to the
    /// profile-based dynamics — identical trajectories either way.
    fn dynamics<M: BayesianModel>(
        &self,
        model: &M,
        space: &CompiledSpace<M>,
        starts: Starts,
        runs: u64,
        seed: u64,
    ) -> SweepStats {
        let lowered = model.lower(space);
        let mut rng = StdRng::seed_from_u64(seed);
        let max_rounds = usize::try_from(self.budget.max_iterations).unwrap_or(usize::MAX);
        let mut stats = SweepStats::new();
        let mut digits = vec![0u32; space.num_slots()];
        // One kernel for all runs: `seed` fully re-initializes its state,
        // so per-run allocation would be pure waste.
        let mut kernel = lowered.kernel();
        for run in 0..runs {
            if starts == Starts::DeterministicThenRandom && run == 0 {
                digits.fill(0);
            } else {
                space.random_digits(&mut rng, &mut digits);
            }
            let start_digits = digits.clone();
            kernel.seed(&digits);
            // The start only feeds `optP`: if it IS an equilibrium, the
            // dynamics' first sweep finds no improvement and returns it,
            // so it is recorded as one below — checking it here too would
            // double the most expensive step of every run.
            stats.observe(kernel.social_cost(), false);
            match kernel_dynamics(space, kernel.as_mut(), &mut digits, max_rounds) {
                DynamicsOutcome::Equilibrium => {
                    debug_assert!(kernel.is_equilibrium());
                    stats.observe(kernel.social_cost(), true);
                }
                DynamicsOutcome::NoEquilibrium => {}
                DynamicsOutcome::Unrepresentable => {
                    // Rerun this start through the model's own dynamics
                    // (the pre-compiled path): same start, same sweep
                    // order, same tolerances — only the bookkeeping
                    // differs.
                    let start = space.materialize(&start_digits);
                    if let Some(eq) = model.best_response_dynamics(start, max_rounds) {
                        debug_assert!(model.is_equilibrium(&eq));
                        stats.observe(model.social_cost(&eq), true);
                    }
                }
            }
        }
        stats
    }
}

/// Start-profile policy of [`Solver::dynamics`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Starts {
    /// First run from the all-first-candidates profile, rest random.
    DeterministicThenRandom,
    /// Every run from a uniformly sampled profile.
    Random,
}

/// Effective worker count: `threads == 0` means one per available core;
/// never more workers than profiles.
fn effective_threads(threads: usize, size: u128) -> usize {
    let configured = if threads == 0 {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    } else {
        threads
    };
    usize::try_from(size.min(configured as u128)).unwrap_or(configured)
}

/// Outcome of one kernel-driven dynamics run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum DynamicsOutcome {
    /// The final digits are a pure Bayesian equilibrium (either the
    /// no-change fixed point or the max-rounds profile after an explicit
    /// check).
    Equilibrium,
    /// Max rounds elapsed without reaching an equilibrium.
    NoEquilibrium,
    /// Some best response is not in the candidate arena; the caller must
    /// redo this run with profile-based dynamics.
    Unrepresentable,
}

/// Interim best-response dynamics over the flat digit buffer — the same
/// sweep order, tolerances and termination rules as
/// [`BayesianModel::best_response_dynamics`], with the kernel's
/// incremental state reused across rounds.
fn kernel_dynamics<M: BayesianModel>(
    space: &CompiledSpace<M>,
    kernel: &mut dyn EvalKernel,
    digits: &mut [u32],
    max_rounds: usize,
) -> DynamicsOutcome {
    for _ in 0..max_rounds {
        let mut changed = false;
        for (j, digit) in digits.iter_mut().enumerate() {
            if space.weight(j) == 0.0 {
                continue;
            }
            match kernel.slot_improvement(j) {
                SlotStep::Stable => {}
                SlotStep::Improve(new) => {
                    let old = *digit;
                    *digit = new;
                    kernel.advance(j, old, new);
                    changed = true;
                }
                SlotStep::Unrepresentable => return DynamicsOutcome::Unrepresentable,
            }
        }
        if !changed {
            return DynamicsOutcome::Equilibrium;
        }
    }
    if kernel.is_equilibrium() {
        DynamicsOutcome::Equilibrium
    } else {
        DynamicsOutcome::NoEquilibrium
    }
}

/// Running extrema of one (chunk of a) sweep.
#[derive(Clone, Copy, Debug)]
struct SweepStats {
    opt_p: f64,
    best_eq_p: f64,
    worst_eq_p: f64,
    found_equilibrium: bool,
    evaluated: u128,
}

impl SweepStats {
    fn new() -> Self {
        SweepStats {
            opt_p: f64::INFINITY,
            best_eq_p: f64::INFINITY,
            worst_eq_p: f64::NEG_INFINITY,
            found_equilibrium: false,
            evaluated: 0,
        }
    }

    fn observe(&mut self, social_cost: f64, is_equilibrium: bool) {
        self.evaluated += 1;
        self.opt_p = self.opt_p.min(social_cost);
        if is_equilibrium {
            self.found_equilibrium = true;
            self.best_eq_p = self.best_eq_p.min(social_cost);
            self.worst_eq_p = self.worst_eq_p.max(social_cost);
        }
    }

    fn merge(self, other: SweepStats) -> SweepStats {
        SweepStats {
            opt_p: self.opt_p.min(other.opt_p),
            best_eq_p: self.best_eq_p.min(other.best_eq_p),
            worst_eq_p: self.worst_eq_p.max(other.worst_eq_p),
            found_equilibrium: self.found_equilibrium || other.found_equilibrium,
            evaluated: self.evaluated + other.evaluated,
        }
    }
}

/// Blocks each worker aims to claim over a full sweep: small enough that
/// claim contention is negligible, large enough that a stalled worker
/// strands at most ~1/32 of the range.
const STEAL_BLOCKS_PER_WORKER: u128 = 32;

/// Smallest work-stealing block, in profiles: keeps the per-block decode
/// and kernel re-seed well under 1% of the block's evaluation work.
const MIN_STEAL_BLOCK: u128 = 1024;

/// Evaluates the contiguous index range `[start, start + count)` of the
/// sweep domain — flat profile indices (`symmetry: None`) or canonical
/// orbit ranks (`symmetry: Some`) — through an incremental kernel. The
/// caller owns the kernel and digit buffer (workers reuse them across
/// stolen blocks); the kernel is re-seeded once from the block's starting
/// digits, then delta-updated per tick — no action is cloned anywhere in
/// this loop.
fn sweep_block<M: BayesianModel>(
    space: &CompiledSpace<M>,
    symmetry: Option<&Symmetry>,
    kernel: &mut dyn EvalKernel,
    digits: &mut [u32],
    start: u128,
    count: u128,
) -> SweepStats {
    let mut stats = SweepStats::new();
    if count == 0 {
        return stats;
    }
    match symmetry {
        None => space.decode(start, digits),
        Some(sym) => sym.decode_canonical(start, digits),
    }
    kernel.seed(digits);
    let mut done = 0u128;
    loop {
        stats.observe(kernel.social_cost(), kernel.is_equilibrium());
        done += 1;
        if done == count {
            return stats;
        }
        match symmetry {
            None => {
                // Odometer increment, last slot fastest; only the digits
                // that change are pushed into the kernel (amortized O(1)
                // per tick).
                let mut j = digits.len();
                loop {
                    debug_assert!(j > 0, "odometer overflow before count was reached");
                    j -= 1;
                    let old = digits[j];
                    if old + 1 < space.slot_size(j) {
                        digits[j] = old + 1;
                        kernel.advance(j, old, old + 1);
                        break;
                    }
                    digits[j] = 0;
                    if old != 0 {
                        kernel.advance(j, old, 0);
                    }
                }
            }
            Some(sym) => {
                let more = sym.next_canonical(digits, |j, old, new| kernel.advance(j, old, new));
                debug_assert!(more, "canonical domain exhausted before count was reached");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bayesian::BayesianGame;
    use crate::game::MatrixFormGame;
    use crate::model::CompleteInfo;
    use crate::random_games::random_bayesian_potential_game;

    fn coordination_game() -> BayesianGame {
        let matcher =
            MatrixFormGame::from_fn(2, &[2, 2], |_, a| if a[0] == a[1] { 0.0 } else { 2.0 });
        let mismatcher =
            MatrixFormGame::from_fn(2, &[2, 2], |_, a| if a[0] != a[1] { 0.0 } else { 2.0 });
        BayesianGame::new(
            vec![1, 2],
            vec![(vec![0, 0], 0.5, matcher), (vec![0, 1], 0.5, mismatcher)],
        )
        .unwrap()
    }

    #[test]
    fn exhaustive_report_is_exact_and_counts_profiles() {
        let game = coordination_game();
        let report = Solver::default().solve(&game).unwrap();
        assert!(report.exact);
        assert_eq!(report.method, Backend::ExhaustiveEnum);
        assert_eq!(report.profiles_evaluated, 8);
        assert_eq!(report.measures.opt_p, 0.0);
        report.measures.verify_chain().unwrap();
    }

    #[test]
    fn threaded_sweep_matches_single_threaded_bitwise() {
        for seed in 0..4 {
            let (game, _) = random_bayesian_potential_game(&[2, 2], &[2, 2], 3, seed);
            let single = Solver::builder().threads(1).build().solve(&game).unwrap();
            let multi = Solver::builder().threads(4).build().solve(&game).unwrap();
            assert_eq!(single.measures, multi.measures, "seed {seed}");
            assert_eq!(single.profiles_evaluated, multi.profiles_evaluated);
        }
    }

    /// One support state, `k` agents with one type each, every agent
    /// paying the same permutation-invariant cost — the whole agent set
    /// is one interchangeability class.
    fn symmetric_congestion_game(k: usize, actions: usize) -> BayesianGame {
        let g = MatrixFormGame::from_fn(k, &vec![actions; k], |_, a| {
            a.iter().map(|&x| (x * x + 1) as f64).sum()
        });
        BayesianGame::new(vec![1; k], vec![(vec![0; k], 1.0, g)]).unwrap()
    }

    /// Seven agents, four actions, one support state, no symmetry: a
    /// 4^7 = 16384-profile space that crosses
    /// [`PARALLEL_SWEEP_MIN_PROFILES`], so multi-thread solves take the
    /// work-stealing path.
    fn large_asymmetric_game() -> BayesianGame {
        // Exact potential structure (separable part + common term), so a
        // pure equilibrium exists; the per-agent parts differ, so no two
        // agents are interchangeable.
        let g = MatrixFormGame::from_fn(7, &[4; 7], |i, a| {
            let own = ((i + 1) * (a[i] * a[i] + 3 * a[i] + 1)) % 13;
            let common = a
                .iter()
                .enumerate()
                .map(|(j, &x)| (x + 1) * (j + 3))
                .sum::<usize>()
                % 17;
            (own + common) as f64
        });
        BayesianGame::new(vec![1; 7], vec![(vec![0; 7], 1.0, g)]).unwrap()
    }

    #[test]
    fn orbit_sweep_matches_full_sweep_and_reports_stats() {
        let game = symmetric_congestion_game(3, 2);
        let full = Solver::default().solve(&game).unwrap();
        let reduced = Solver::builder()
            .symmetry(SymmetryMode::Auto)
            .build()
            .solve(&game)
            .unwrap();
        assert_eq!(reduced.measures, full.measures);
        assert_eq!(full.profiles_evaluated, 8);
        assert_eq!(full.orbit, None);
        // 3 interchangeable binary agents: multichoose(2, 3) = 4 orbits.
        assert_eq!(reduced.profiles_evaluated, 4);
        assert_eq!(
            reduced.orbit,
            Some(OrbitStats {
                orbits_evaluated: 4,
                profiles_represented: 8,
                group_order: 6,
            })
        );
    }

    #[test]
    fn auto_symmetry_on_an_asymmetric_game_reports_no_orbit() {
        let game = coordination_game();
        let off = Solver::default().solve(&game).unwrap();
        let auto = Solver::builder()
            .symmetry(SymmetryMode::Auto)
            .build()
            .solve(&game)
            .unwrap();
        assert_eq!(auto.orbit, None);
        assert_eq!(auto.profiles_evaluated, off.profiles_evaluated);
        assert_eq!(auto.measures, off.measures);
    }

    #[test]
    fn budget_gates_on_the_orbit_count_under_auto_symmetry() {
        let game = symmetric_congestion_game(3, 2);
        // 8 profiles but only 4 orbits: a 4-profile budget fails the full
        // sweep and exactly fits the reduced one.
        let err = Solver::builder()
            .max_profiles(4)
            .build()
            .solve(&game)
            .unwrap_err();
        assert!(matches!(
            err,
            SolveError::BudgetExceeded { required: 8, .. }
        ));
        let report = Solver::builder()
            .max_profiles(4)
            .symmetry(SymmetryMode::Auto)
            .build()
            .solve(&game)
            .unwrap();
        assert_eq!(report.profiles_evaluated, 4);
        let err = Solver::builder()
            .max_profiles(3)
            .symmetry(SymmetryMode::Auto)
            .build()
            .solve(&game)
            .unwrap_err();
        assert!(matches!(
            err,
            SolveError::BudgetExceeded { required: 4, .. }
        ));
    }

    #[test]
    fn auto_symmetry_skips_detection_when_checks_cost_more_than_the_sweep() {
        // The BENCH_solver.json regression family: 14 interchangeable
        // binary agents. Verifying the 13 candidate pairs rescans 14
        // tables of 2^14 entries each under a swapped index — several
        // times the work of the 2^14-profile sweep — so Auto must fall
        // back to the full sweep (orbit reporting stays `None`) rather
        // than pay for a reduction that slows the solve down ~8x.
        use crate::model::BayesianModel as _;
        let game = symmetric_congestion_game(14, 2);
        let check_bill = game
            .interchangeable_check_cost()
            .saturating_mul(game.num_agents() as u128 - 1);
        assert!(
            check_bill >= game.strategy_space_size().unwrap(),
            "the fixture must make detection more expensive than sweeping"
        );
        let auto = Solver::builder()
            .symmetry(SymmetryMode::Auto)
            .build()
            .solve(&game)
            .unwrap();
        assert_eq!(auto.orbit, None, "Auto must not pay for detection here");
        assert_eq!(auto.profiles_evaluated, 1 << 14);
        let full = Solver::default().solve(&game).unwrap();
        assert_eq!(auto.measures, full.measures);

        // But when the full sweep is over budget, the reduction is the
        // only viable path, so Auto runs detection regardless of cost.
        let gated = Solver::builder()
            .symmetry(SymmetryMode::Auto)
            .max_profiles(1 << 10)
            .build()
            .solve(&game)
            .unwrap();
        // 14 interchangeable binary agents: multichoose(2, 14) = 15
        // orbits, well under the budget the full sweep busts.
        assert_eq!(gated.profiles_evaluated, 15);
        assert_eq!(gated.measures, full.measures);
    }

    #[test]
    fn work_stealing_sweep_is_deterministic_across_thread_counts() {
        use crate::model::BayesianModel as _;
        let game = large_asymmetric_game();
        assert!(game.strategy_space_size().unwrap() >= PARALLEL_SWEEP_MIN_PROFILES);
        let baseline = Solver::builder().threads(1).build().solve(&game).unwrap();
        for threads in [2, 4, 8] {
            let report = Solver::builder()
                .threads(threads)
                .build()
                .solve(&game)
                .unwrap();
            assert_eq!(report, baseline, "threads {threads}");
        }
    }

    #[test]
    fn budget_gates_exhaustive_enumeration() {
        let game = coordination_game();
        let err = Solver::builder()
            .max_profiles(4)
            .build()
            .solve(&game)
            .unwrap_err();
        assert!(matches!(
            err,
            SolveError::BudgetExceeded {
                required: 8,
                max_profiles: 4
            }
        ));
    }

    #[test]
    fn monte_carlo_caps_samples_at_the_profile_budget() {
        let game = coordination_game();
        let report = Solver::builder()
            .backend(Backend::MonteCarloSampling {
                samples: 32,
                seed: 3,
            })
            .max_profiles(4)
            .build()
            .solve(&game)
            .unwrap();
        // Never errors on budget, but the truncation is visible: 4 starts,
        // each evaluated once plus its dynamics endpoint.
        assert!(!report.exact);
        assert_eq!(report.sample_cap, Some(4));
        assert!(report.profiles_evaluated <= 8);
        report.measures.verify_chain().unwrap();
    }

    #[test]
    fn monte_carlo_zero_budget_still_runs_one_start() {
        let game = coordination_game();
        let report = Solver::builder()
            .backend(Backend::MonteCarloSampling {
                samples: 32,
                seed: 3,
            })
            .max_profiles(0)
            .build()
            .solve(&game)
            .unwrap();
        // Not a spurious NoEquilibrium: one start runs and its dynamics
        // find a genuine equilibrium.
        assert_eq!(report.sample_cap, Some(1));
        report.measures.verify_chain().unwrap();
    }

    #[test]
    fn monte_carlo_within_budget_reports_no_cap() {
        let game = coordination_game();
        let report = Solver::builder()
            .backend(Backend::MonteCarloSampling {
                samples: 8,
                seed: 3,
            })
            .build()
            .solve(&game)
            .unwrap();
        assert_eq!(report.sample_cap, None);
        let exhaustive = Solver::default().solve(&game).unwrap();
        assert_eq!(exhaustive.sample_cap, None);
    }

    #[test]
    fn solve_many_matches_sequential_solves() {
        let games: Vec<_> = (0..6)
            .map(|seed| random_bayesian_potential_game(&[2, 2], &[2, 2], 3, seed).0)
            .collect();
        let refs: Vec<&BayesianGame> = games.iter().collect();
        for threads in [1, 4] {
            let solver = Solver::builder().threads(threads).build();
            let batch = solver.solve_many(&refs);
            assert_eq!(batch.len(), games.len());
            for (game, result) in games.iter().zip(&batch) {
                let single = solver.solve(game).unwrap();
                let report = result.as_ref().unwrap();
                assert_eq!(report.measures, single.measures, "threads {threads}");
                assert_eq!(report.profiles_evaluated, single.profiles_evaluated);
            }
        }
    }

    #[test]
    fn solve_many_preserves_per_game_errors() {
        let solvable = coordination_game();
        let solver = Solver::builder().max_profiles(4).threads(2).build();
        let batch = solver.solve_many(&[&solvable, &solvable]);
        for result in batch {
            assert!(matches!(
                result,
                Err(SolveError::BudgetExceeded { required: 8, .. })
            ));
        }
    }

    #[test]
    fn solver_config_round_trips() {
        let config = SolverConfig {
            backend: Backend::MonteCarloSampling {
                samples: 16,
                seed: 9,
            },
            budget: Budget {
                max_profiles: 1000,
                max_iterations: 32,
            },
            threads: 3,
            symmetry: SymmetryMode::Auto,
        };
        let solver = Solver::from_config(config);
        assert_eq!(solver.config(), config);
        assert_eq!(Solver::from(config).config(), config);
        assert_eq!(SolverConfig::default(), Solver::default().config());
        assert_eq!(solver.threads(), 3);
        assert_eq!(solver.symmetry(), SymmetryMode::Auto);
        assert_eq!(Solver::default().symmetry(), SymmetryMode::Off);
    }

    #[test]
    fn sampling_backends_bracket_the_exact_measures() {
        for seed in 0..4 {
            let (game, _) = random_bayesian_potential_game(&[2, 2], &[2, 2], 2, seed);
            let exact = Solver::default().solve(&game).unwrap().measures;
            for backend in [
                Backend::BestResponseDynamics {
                    restarts: 8,
                    seed: 11,
                },
                Backend::MonteCarloSampling {
                    samples: 64,
                    seed: 11,
                },
            ] {
                let approx = Solver::builder()
                    .backend(backend)
                    .build()
                    .solve(&game)
                    .unwrap()
                    .measures;
                assert!(exact.opt_p <= approx.opt_p + 1e-12, "seed {seed}");
                assert!(exact.best_eq_p <= approx.best_eq_p + 1e-12, "seed {seed}");
                assert!(approx.worst_eq_p <= exact.worst_eq_p + 1e-12, "seed {seed}");
            }
        }
    }

    #[test]
    fn dynamics_backends_are_deterministic_per_seed() {
        let (game, _) = random_bayesian_potential_game(&[2, 2], &[2, 2], 3, 9);
        let backend = Backend::MonteCarloSampling {
            samples: 32,
            seed: 5,
        };
        let a = Solver::builder().backend(backend).build().solve(&game);
        let b = Solver::builder().backend(backend).build().solve(&game);
        assert_eq!(a.unwrap().measures, b.unwrap().measures);
    }

    /// 129 one-type agents with 2 candidate actions each: the candidate
    /// product is `2^129 > u128::MAX`. Interim cost equals the played
    /// action, so the all-zeros profile is the unique equilibrium and
    /// best-response dynamics reach it from anywhere in one sweep.
    struct HugeSpaceModel;

    impl BayesianModel for HugeSpaceModel {
        type Action = usize;

        fn num_agents(&self) -> usize {
            129
        }

        fn type_count(&self, _agent: usize) -> usize {
            1
        }

        fn type_weight(&self, _agent: usize, _tau: usize) -> f64 {
            1.0
        }

        fn candidate_actions(&self, _agent: usize, _tau: usize) -> Result<Vec<usize>, SolveError> {
            Ok(vec![0, 1])
        }

        fn social_cost(&self, profile: &Vec<Vec<usize>>) -> f64 {
            profile.iter().flatten().map(|&a| a as f64).sum()
        }

        fn interim_cost(
            &self,
            _agent: usize,
            _tau: usize,
            action: &usize,
            _profile: &Vec<Vec<usize>>,
        ) -> f64 {
            *action as f64
        }

        fn best_response(
            &self,
            _agent: usize,
            _tau: usize,
            _profile: &Vec<Vec<usize>>,
        ) -> (usize, f64) {
            (0, 0.0)
        }

        fn complete_info(&self) -> Result<CompleteInfo, SolveError> {
            Ok(CompleteInfo {
                opt_c: 0.0,
                best_eq_c: 0.0,
                worst_eq_c: 0.0,
            })
        }
    }

    #[test]
    fn space_overflow_errors_only_under_the_exhaustive_backend() {
        let model = HugeSpaceModel;
        assert!(matches!(
            BayesianModel::strategy_space_size(&model),
            Err(SolveError::SpaceTooLarge)
        ));
        let err = Solver::default().solve(&model).unwrap_err();
        assert!(matches!(err, SolveError::SpaceTooLarge));

        // The sampling backends never size the space: they must solve it.
        let report = Solver::builder()
            .backend(Backend::MonteCarloSampling {
                samples: 8,
                seed: 1,
            })
            .build()
            .solve(&model)
            .unwrap();
        assert!(!report.exact);
        assert_eq!(report.measures.opt_p, 0.0);
        assert_eq!(report.measures.best_eq_p, 0.0);
        assert_eq!(report.measures.worst_eq_p, 0.0);
    }

    #[test]
    fn errors_format_and_chain() {
        let e = SolveError::BudgetExceeded {
            required: 10,
            max_profiles: 5,
        };
        assert!(e.to_string().contains("10"));
        assert!(e.source().is_none());
        let inner = crate::game::EnumerationError { required: 7 };
        let wrapped = SolveError::Model(Box::new(inner));
        assert!(wrapped.source().is_some());
    }
}
