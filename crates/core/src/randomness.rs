//! Section 4: public random bits as a substitute for the common prior.
//!
//! For a 4-tuple `φ = ⟨k, {A_i}, {T_i}, {C_{i,t}}⟩` (a Bayesian game
//! *without* its prior), the paper defines
//!
//! * `R(φ)` — the smallest `r` such that for every prior `p` there is a
//!   strategy profile `s` with `Σ_t p(t)K(s,t) / Σ_t p(t)·min_{s'}K(s',t) ≤ r`
//!   (ratio of expectations);
//! * `R̃(φ)` — the same with the ratio moved inside the expectation:
//!   `Σ_t p(t)·K(s,t)/min_{s'}K(s',t) ≤ r`.
//!
//! Proposition 4.2 shows `R(φ) = R̃(φ)`, and Lemma 4.1 (via von Neumann's
//! minimax theorem) produces a prior-independent distribution `q ∈ Δ(S)`
//! achieving `R(φ)` in expectation. This module makes all of that
//! constructive: `R̃(φ)` and `q` come from solving the zero-sum matrix game
//! with payoff `K'(s,t) = K(s,t)/min_{s'}K(s',t)` exactly (simplex LP), and
//! `R(φ)` is computed independently by bisection over LP feasibility
//! probes so the Proposition 4.2 equality can be *checked* numerically.

use std::fmt;

use bi_zerosum::matrix_game::MatrixGame;

use crate::bayesian::BayesianGame;
use crate::game::EnumerationError;

/// Errors from [`CostTuple`] computations.
#[derive(Clone, Debug, PartialEq)]
pub enum RandomnessError {
    /// Strategy enumeration exceeded the workspace limit.
    TooLarge(EnumerationError),
    /// A social cost was non-positive or non-finite (Section 4 assumes
    /// `C_{i,t}(a) > 0`).
    BadCost {
        /// The support-state index with the invalid cost.
        state: usize,
    },
    /// The zero-sum solver failed.
    Solver(String),
}

impl fmt::Display for RandomnessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RandomnessError::TooLarge(e) => write!(f, "{e}"),
            RandomnessError::BadCost { state } => {
                write!(
                    f,
                    "state {state} has a non-positive or non-finite social cost"
                )
            }
            RandomnessError::Solver(msg) => write!(f, "zero-sum solver failed: {msg}"),
        }
    }
}

impl std::error::Error for RandomnessError {}

impl From<EnumerationError> for RandomnessError {
    fn from(e: EnumerationError) -> Self {
        RandomnessError::TooLarge(e)
    }
}

/// The 4-tuple `φ` of Section 4, tabulated: `k[s][t]` is the social cost
/// `K(s, t)` of the `s`-th strategy profile in the `t`-th state, and
/// `min_per_state[t] = min_s K(s, t)`.
///
/// States are taken from a [`BayesianGame`]'s support (its prior
/// probabilities are deliberately ignored — Section 4 quantifies over all
/// priors on those states).
#[derive(Clone, Debug)]
pub struct CostTuple {
    k: Vec<Vec<f64>>,
    min_per_state: Vec<f64>,
}

/// Result of solving Section 4 for a [`CostTuple`].
#[derive(Clone, Debug)]
pub struct PublicRandomness {
    /// `R̃(φ)`, computed as the exact value of the `K'` zero-sum game.
    pub r_tilde: f64,
    /// The Lemma 4.1 distribution `q ∈ Δ(S)` over strategy profiles.
    pub distribution: Vec<f64>,
    /// The adversarial prior (nature's optimal mixed strategy over states).
    pub worst_prior: Vec<f64>,
}

impl CostTuple {
    /// Tabulates `φ` from a Bayesian game by enumerating its strategy
    /// profiles and support states.
    ///
    /// # Errors
    ///
    /// Returns [`RandomnessError::TooLarge`] when the strategy space is not
    /// enumerable and [`RandomnessError::BadCost`] when some state has a
    /// non-positive or infinite minimal social cost (Section 4 requires
    /// strictly positive costs).
    pub fn from_bayesian(game: &BayesianGame) -> Result<Self, RandomnessError> {
        let n_states = game.support_len();
        let mut k: Vec<Vec<f64>> = Vec::new();
        for s in game.strategies()? {
            let mut row = Vec::with_capacity(n_states);
            for idx in 0..n_states {
                let (types, _, state_game) = game.state(idx);
                let action: Vec<usize> = s.iter().zip(types).map(|(si, &t)| si[t]).collect();
                row.push(state_game.social_cost(&action));
            }
            k.push(row);
        }
        let mut min_per_state = vec![f64::INFINITY; n_states];
        for row in &k {
            for (t, &v) in row.iter().enumerate() {
                min_per_state[t] = min_per_state[t].min(v);
            }
        }
        for (state, &m) in min_per_state.iter().enumerate() {
            if !(m.is_finite() && m > 0.0) {
                return Err(RandomnessError::BadCost { state });
            }
        }
        // Strategies that are infinitely bad in some state can never be in
        // the support of q; clamp them to a huge finite value so the LP
        // stays well-posed.
        let cap = 1e9;
        for row in &mut k {
            for v in row.iter_mut() {
                if !v.is_finite() {
                    *v = cap;
                }
            }
        }
        Ok(CostTuple { k, min_per_state })
    }

    /// Builds a tuple directly from a tabulated `K(s, t)` matrix (rows =
    /// strategy profiles, columns = states). Used when the strategy space
    /// is enumerated by a caller with more structure (e.g. NCS games).
    ///
    /// # Errors
    ///
    /// Returns [`RandomnessError::BadCost`] when some state's minimum is
    /// non-positive or non-finite.
    pub fn from_matrix(k: Vec<Vec<f64>>) -> Result<Self, RandomnessError> {
        assert!(
            !k.is_empty() && !k[0].is_empty(),
            "matrix must be non-empty"
        );
        let n_states = k[0].len();
        assert!(
            k.iter().all(|row| row.len() == n_states),
            "matrix must be rectangular"
        );
        let mut min_per_state = vec![f64::INFINITY; n_states];
        for row in &k {
            for (t, &v) in row.iter().enumerate() {
                min_per_state[t] = min_per_state[t].min(v);
            }
        }
        for (state, &m) in min_per_state.iter().enumerate() {
            if !(m.is_finite() && m > 0.0) {
                return Err(RandomnessError::BadCost { state });
            }
        }
        let cap = 1e9;
        let k = k
            .into_iter()
            .map(|row| {
                row.into_iter()
                    .map(|v| if v.is_finite() { v } else { cap })
                    .collect()
            })
            .collect();
        Ok(CostTuple { k, min_per_state })
    }

    /// Number of strategy profiles `|S|`.
    #[must_use]
    pub fn num_strategies(&self) -> usize {
        self.k.len()
    }

    /// Number of states `|T|`.
    #[must_use]
    pub fn num_states(&self) -> usize {
        self.min_per_state.len()
    }

    /// The normalized matrix `K'(s,t) = K(s,t) / min_{s'} K(s',t)`.
    #[must_use]
    pub fn normalized(&self) -> Vec<Vec<f64>> {
        self.k
            .iter()
            .map(|row| {
                row.iter()
                    .zip(&self.min_per_state)
                    .map(|(&v, &m)| v / m)
                    .collect()
            })
            .collect()
    }

    /// Solves Section 4 exactly: `R̃(φ)` as the value of the zero-sum game
    /// where nature (maximizer) picks a state and the benevolent coalition
    /// (minimizer) picks a strategy profile with payoff `K'(s,t)`; the
    /// minimizer's optimal mixture is the Lemma 4.1 distribution `q`.
    ///
    /// # Errors
    ///
    /// Returns [`RandomnessError::Solver`] if the LP fails.
    pub fn solve(&self) -> Result<PublicRandomness, RandomnessError> {
        let kp = self.normalized();
        // Rows = states (maximizer), columns = strategies (minimizer).
        let payoff: Vec<Vec<f64>> = (0..self.num_states())
            .map(|t| (0..self.num_strategies()).map(|s| kp[s][t]).collect())
            .collect();
        let game = MatrixGame::new(payoff).map_err(|e| RandomnessError::Solver(e.to_string()))?;
        let sol = game
            .solve()
            .map_err(|e| RandomnessError::Solver(e.to_string()))?;
        Ok(PublicRandomness {
            r_tilde: sol.value,
            distribution: sol.col_strategy,
            worst_prior: sol.row_strategy,
        })
    }

    /// Computes `R(φ)` (the ratio-of-expectations form) *independently* of
    /// [`CostTuple::solve`], by bisecting on `r` and testing, via a
    /// zero-sum value probe, whether some prior forces every strategy's
    /// expected cost above `r` times the expected optimum.
    ///
    /// `r` is feasible for nature iff the game with payoff
    /// `A_r[t][s] = K(s,t) − r·v(t)` has non-negative value.
    ///
    /// # Errors
    ///
    /// Returns [`RandomnessError::Solver`] if an LP probe fails.
    pub fn r_star(&self, tolerance: f64) -> Result<f64, RandomnessError> {
        let mut lo = 1.0; // K(s,t) ≥ v(t) pointwise, so R ≥ 1
        let mut hi = self
            .normalized()
            .iter()
            .flatten()
            .copied()
            .fold(1.0, f64::max);
        while hi - lo > tolerance {
            let mid = 0.5 * (lo + hi);
            if self.nature_can_force(mid)? {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Ok(0.5 * (lo + hi))
    }

    /// Whether some prior makes every strategy's expected cost at least
    /// `r` times the expected optimum (strictly positive slack).
    fn nature_can_force(&self, r: f64) -> Result<bool, RandomnessError> {
        let payoff: Vec<Vec<f64>> = (0..self.num_states())
            .map(|t| {
                (0..self.num_strategies())
                    .map(|s| self.k[s][t] - r * self.min_per_state[t])
                    .collect()
            })
            .collect();
        let game = MatrixGame::new(payoff).map_err(|e| RandomnessError::Solver(e.to_string()))?;
        let value = game
            .solve()
            .map_err(|e| RandomnessError::Solver(e.to_string()))?
            .value;
        Ok(value >= 0.0)
    }

    /// Evaluates the left-hand side of Lemma 4.1 for a concrete prior `p`:
    /// `Σ_s q(s)·Σ_t p(t)K(s,t)  /  Σ_t p(t)·min_{s'}K(s',t)`.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions of `q` or `prior` do not match.
    #[must_use]
    pub fn guarantee(&self, q: &[f64], prior: &[f64]) -> f64 {
        assert_eq!(q.len(), self.num_strategies(), "q dimension");
        assert_eq!(prior.len(), self.num_states(), "prior dimension");
        let numerator: f64 = self
            .k
            .iter()
            .zip(q)
            .map(|(row, &qs)| {
                qs * row
                    .iter()
                    .zip(prior)
                    .map(|(&kst, &pt)| pt * kst)
                    .sum::<f64>()
            })
            .sum();
        let denominator: f64 = self
            .min_per_state
            .iter()
            .zip(prior)
            .map(|(&v, &pt)| pt * v)
            .sum();
        numerator / denominator
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::game::MatrixFormGame;
    use rand::Rng;

    /// A decision maker (agent 0, one type, two actions) plus "nature"
    /// (agent 1, two types, one dummy action). Action 0 is good in
    /// nature's state 0, action 1 in state 1, and the decision maker
    /// cannot observe which state holds.
    fn guessing_game() -> BayesianGame {
        let cost = |good: usize| {
            MatrixFormGame::from_fn(2, &[2, 1], move |i, a| {
                if i == 1 {
                    0.0
                } else if a[0] == good {
                    1.0
                } else {
                    2.0
                }
            })
        };
        BayesianGame::new(
            vec![1, 2],
            vec![(vec![0, 0], 0.5, cost(0)), (vec![0, 1], 0.5, cost(1))],
        )
        .unwrap()
    }

    #[test]
    fn tabulation_shapes_match() {
        let tuple = CostTuple::from_bayesian(&guessing_game()).unwrap();
        assert_eq!(tuple.num_strategies(), 2);
        assert_eq!(tuple.num_states(), 2);
        assert_eq!(tuple.normalized()[0], vec![1.0, 2.0]);
    }

    #[test]
    fn guessing_game_has_r_three_halves() {
        // K' is the matching-pennies-like matrix [[1,2],[2,1]]: the value
        // of the associated game is 3/2 (nature mixes 50/50, q mixes 50/50).
        let tuple = CostTuple::from_bayesian(&guessing_game()).unwrap();
        let sol = tuple.solve().unwrap();
        assert!((sol.r_tilde - 1.5).abs() < 1e-9);
        assert!((sol.distribution[0] - 0.5).abs() < 1e-9);
        assert!((sol.worst_prior[0] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn proposition_4_2_holds_on_the_guessing_game() {
        let tuple = CostTuple::from_bayesian(&guessing_game()).unwrap();
        let r_tilde = tuple.solve().unwrap().r_tilde;
        let r_star = tuple.r_star(1e-7).unwrap();
        assert!((r_tilde - r_star).abs() < 1e-5, "{r_tilde} vs {r_star}");
    }

    #[test]
    fn lemma_4_1_guarantee_holds_for_many_priors() {
        let tuple = CostTuple::from_bayesian(&guessing_game()).unwrap();
        let sol = tuple.solve().unwrap();
        let mut rng = bi_util::rng::seeded(11);
        for _ in 0..200 {
            let a: f64 = rng.random_range(0.0..1.0);
            let prior = vec![a, 1.0 - a];
            let lhs = tuple.guarantee(&sol.distribution, &prior);
            assert!(
                lhs <= sol.r_tilde + 1e-7,
                "prior {prior:?} violates the bound: {lhs} > {}",
                sol.r_tilde
            );
        }
    }

    #[test]
    fn proposition_4_2_holds_on_random_tuples() {
        let mut rng = bi_util::rng::seeded(29);
        for trial in 0..5 {
            let n_states = rng.random_range(2..4);
            let states: Vec<(Vec<usize>, f64, MatrixFormGame)> = (0..n_states)
                .map(|t| {
                    let mut local = bi_util::rng::seeded(trial * 100 + t as u64);
                    let g = MatrixFormGame::from_fn(2, &[2, 2], move |i, a| {
                        0.5 + ((a[0] * 2 + a[1] + i + 1) as f64 * local.random_range(0.2..1.0))
                    });
                    (vec![0, t], 1.0 / n_states as f64, g)
                })
                .collect();
            let game = BayesianGame::new(vec![1, n_states], states).unwrap();
            let tuple = CostTuple::from_bayesian(&game).unwrap();
            let r_tilde = tuple.solve().unwrap().r_tilde;
            let r_star = tuple.r_star(1e-7).unwrap();
            assert!(
                (r_tilde - r_star).abs() < 1e-4,
                "trial {trial}: {r_tilde} vs {r_star}"
            );
        }
    }

    #[test]
    fn degenerate_priors_are_covered_by_the_guarantee() {
        let tuple = CostTuple::from_bayesian(&guessing_game()).unwrap();
        let sol = tuple.solve().unwrap();
        for t in 0..tuple.num_states() {
            let mut prior = vec![0.0; tuple.num_states()];
            prior[t] = 1.0;
            assert!(tuple.guarantee(&sol.distribution, &prior) <= sol.r_tilde + 1e-9);
        }
    }
}
