//! Exhaustive pure-Nash analysis of complete-information games.

use bi_util::approx_le;

use crate::game::MatrixFormGame;

/// Whether `profile` is a pure Nash equilibrium: no agent can strictly
/// lower her cost by a unilateral deviation (up to the workspace
/// tolerance).
///
/// # Panics
///
/// Panics if the profile shape does not match the game.
///
/// # Examples
///
/// ```
/// use bi_core::game::MatrixFormGame;
///
/// // Coordination: both agents want to match.
/// let g = MatrixFormGame::from_fn(2, &[2, 2], |_, a| {
///     if a[0] == a[1] { 0.0 } else { 1.0 }
/// });
/// assert!(bi_core::nash::is_nash(&g, &[0, 0]));
/// assert!(!bi_core::nash::is_nash(&g, &[0, 1]));
/// ```
#[must_use]
pub fn is_nash(game: &MatrixFormGame, profile: &[usize]) -> bool {
    let mut work = profile.to_vec();
    for i in 0..game.num_agents() {
        let current = game.cost(i, profile);
        for a in 0..game.num_actions(i) {
            if a == profile[i] {
                continue;
            }
            work[i] = a;
            let dev = game.cost(i, &work);
            if dev < current && !approx_le(current, dev) {
                return false;
            }
        }
        work[i] = profile[i];
    }
    true
}

/// All pure Nash equilibria, by exhaustive enumeration.
///
/// # Examples
///
/// ```
/// use bi_core::game::MatrixFormGame;
///
/// let g = MatrixFormGame::from_fn(2, &[2, 2], |_, a| {
///     if a[0] == a[1] { 0.0 } else { 1.0 }
/// });
/// assert_eq!(bi_core::nash::enumerate_nash(&g).len(), 2);
/// ```
#[must_use]
pub fn enumerate_nash(game: &MatrixFormGame) -> Vec<Vec<usize>> {
    game.profiles().filter(|p| is_nash(game, p)).collect()
}

/// `(social cost, profile)` of a social optimum.
///
/// Profiles with infinite social cost are still considered (a game may
/// have no finite outcome); ties go to the first profile in enumeration
/// order.
#[must_use]
pub fn social_optimum(game: &MatrixFormGame) -> (f64, Vec<usize>) {
    let mut best = f64::INFINITY;
    let mut best_profile = vec![0; game.num_agents()];
    for p in game.profiles() {
        let k = game.social_cost(&p);
        if k < best {
            best = k;
            best_profile = p;
        }
    }
    (best, best_profile)
}

/// Social costs of the best and worst pure Nash equilibria, or `None` if
/// the game has no pure equilibrium.
#[must_use]
pub fn equilibrium_cost_range(game: &MatrixFormGame) -> Option<(f64, f64)> {
    let mut best = f64::INFINITY;
    let mut worst = f64::NEG_INFINITY;
    let mut found = false;
    for p in game.profiles() {
        if is_nash(game, &p) {
            found = true;
            let k = game.social_cost(&p);
            best = best.min(k);
            worst = worst.max(k);
        }
    }
    found.then_some((best, worst))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Prisoner's dilemma in cost form: defect (action 1) dominates.
    fn prisoners_dilemma() -> MatrixFormGame {
        MatrixFormGame::from_fn(2, &[2, 2], |i, a| {
            let (mine, theirs) = (a[i], a[1 - i]);
            match (mine, theirs) {
                (0, 0) => 1.0, // both cooperate
                (0, 1) => 3.0, // I cooperate, they defect
                (1, 0) => 0.0, // I defect, they cooperate
                (1, 1) => 2.0, // both defect
                _ => unreachable!(),
            }
        })
    }

    #[test]
    fn prisoners_dilemma_has_unique_defect_equilibrium() {
        let g = prisoners_dilemma();
        let eqs = enumerate_nash(&g);
        assert_eq!(eqs, vec![vec![1, 1]]);
        let (best, worst) = equilibrium_cost_range(&g).unwrap();
        assert_eq!(best, 4.0);
        assert_eq!(worst, 4.0);
        let (opt, profile) = social_optimum(&g);
        assert_eq!(opt, 2.0);
        assert_eq!(profile, vec![0, 0]);
    }

    #[test]
    fn matching_pennies_has_no_pure_equilibrium() {
        let g = MatrixFormGame::from_fn(2, &[2, 2], |i, a| {
            let matched = a[0] == a[1];
            match (i, matched) {
                (0, true) | (1, false) => 0.0,
                _ => 1.0,
            }
        });
        assert!(enumerate_nash(&g).is_empty());
        assert!(equilibrium_cost_range(&g).is_none());
    }

    #[test]
    fn equilibria_with_infinite_costs_elsewhere() {
        // Action 1 is infeasible (infinite): only [0,0] matters.
        let g =
            MatrixFormGame::from_fn(
                2,
                &[2, 2],
                |_, a| {
                    if a.contains(&1) {
                        f64::INFINITY
                    } else {
                        1.0
                    }
                },
            );
        let eqs = enumerate_nash(&g);
        assert!(eqs.contains(&vec![0, 0]));
        let (opt, _) = social_optimum(&g);
        assert_eq!(opt, 2.0);
    }

    #[test]
    fn indifferent_deviations_do_not_break_equilibrium() {
        let g = MatrixFormGame::from_fn(1, &[3], |_, _| 5.0);
        assert!(is_nash(&g, &[0]));
        assert_eq!(enumerate_nash(&g).len(), 3);
    }

    #[test]
    fn best_and_worst_equilibria_differ_in_coordination_games() {
        // Two equilibria of different quality.
        let g = MatrixFormGame::from_fn(2, &[2, 2], |_, a| match (a[0], a[1]) {
            (0, 0) => 1.0,
            (1, 1) => 2.0,
            _ => 5.0,
        });
        let (best, worst) = equilibrium_cost_range(&g).unwrap();
        assert_eq!(best, 2.0);
        assert_eq!(worst, 4.0);
    }
}
