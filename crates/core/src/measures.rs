//! The six social-cost quantities and the three Bayesian-ignorance ratios.

use std::fmt;

use bi_util::approx_le;

/// The six quantities of Section 2:
///
/// * partial information: `optP`, `best-eqP`, `worst-eqP` — optimum, best
///   and worst Bayesian-equilibrium social cost of the Bayesian game;
/// * complete information: `optC`, `best-eqC`, `worst-eqC` — prior-averaged
///   optimum, best and worst pure-Nash social cost of the underlying games.
///
/// # Examples
///
/// ```
/// let m = bi_core::Measures {
///     opt_p: 2.0, best_eq_p: 2.0, worst_eq_p: 3.0,
///     opt_c: 1.0, best_eq_c: 1.5, worst_eq_c: 4.0,
/// };
/// m.verify_chain().unwrap();
/// let r = m.ratios();
/// assert_eq!(r.opt, 2.0);
/// assert_eq!(r.worst_eq, 0.75);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Measures {
    /// `optP = min_s K(s)`.
    pub opt_p: f64,
    /// `best-eqP = min over Bayesian equilibria of K(s)`.
    pub best_eq_p: f64,
    /// `worst-eqP = max over Bayesian equilibria of K(s)`.
    pub worst_eq_p: f64,
    /// `optC = Σ_t p(t)·min_a K_t(a)`.
    pub opt_c: f64,
    /// `best-eqC = Σ_t p(t)·min over Nash equilibria of K_t`.
    pub best_eq_c: f64,
    /// `worst-eqC = Σ_t p(t)·max over Nash equilibria of K_t`.
    pub worst_eq_c: f64,
}

/// The three headline ratios of the paper (Table 1 rows).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IgnoranceRatios {
    /// `optP / optC` — benevolent agents.
    pub opt: f64,
    /// `best-eqP / best-eqC` — selfish agents, best equilibria.
    pub best_eq: f64,
    /// `worst-eqP / worst-eqC` — selfish agents, worst equilibria.
    pub worst_eq: f64,
}

/// Error from [`Measures::verify_chain`]: the Observation 2.2 chain
/// `optC ≤ optP ≤ best-eqP ≤ worst-eqP` failed.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChainViolation {
    /// Human-readable name of the failed link.
    pub link: &'static str,
    /// Left value of the failed inequality.
    pub lhs: f64,
    /// Right value of the failed inequality.
    pub rhs: f64,
}

impl fmt::Display for ChainViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Observation 2.2 violated: {} ({} > {})",
            self.link, self.lhs, self.rhs
        )
    }
}

impl std::error::Error for ChainViolation {}

impl Measures {
    /// The three ignorance ratios. Division by zero yields `f64::INFINITY`
    /// or NaN exactly as IEEE arithmetic dictates; the paper's Section 4
    /// remark (interpret 0/0 as 1) is applied.
    #[must_use]
    pub fn ratios(&self) -> IgnoranceRatios {
        IgnoranceRatios {
            opt: ratio(self.opt_p, self.opt_c),
            best_eq: ratio(self.best_eq_p, self.best_eq_c),
            worst_eq: ratio(self.worst_eq_p, self.worst_eq_c),
        }
    }

    /// Checks Observation 2.2: `optC ≤ optP ≤ best-eqP ≤ worst-eqP`.
    ///
    /// # Errors
    ///
    /// Returns the first violated link.
    pub fn verify_chain(&self) -> Result<(), ChainViolation> {
        let links = [
            ("optC ≤ optP", self.opt_c, self.opt_p),
            ("optP ≤ best-eqP", self.opt_p, self.best_eq_p),
            ("best-eqP ≤ worst-eqP", self.best_eq_p, self.worst_eq_p),
        ];
        for (link, lhs, rhs) in links {
            if !approx_le(lhs, rhs) {
                return Err(ChainViolation { link, lhs, rhs });
            }
        }
        Ok(())
    }
}

fn ratio(num: f64, den: f64) -> f64 {
    if num == 0.0 && den == 0.0 {
        1.0 // the paper's 0/0 := 1 convention
    } else {
        num / den
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Measures {
        Measures {
            opt_p: 4.0,
            best_eq_p: 5.0,
            worst_eq_p: 6.0,
            opt_c: 2.0,
            best_eq_c: 2.5,
            worst_eq_c: 3.0,
        }
    }

    #[test]
    fn ratios_divide_componentwise() {
        let r = sample().ratios();
        assert_eq!(r.opt, 2.0);
        assert_eq!(r.best_eq, 2.0);
        assert_eq!(r.worst_eq, 2.0);
    }

    #[test]
    fn zero_over_zero_is_one() {
        let m = Measures {
            opt_p: 0.0,
            best_eq_p: 0.0,
            worst_eq_p: 0.0,
            opt_c: 0.0,
            best_eq_c: 0.0,
            worst_eq_c: 0.0,
        };
        let r = m.ratios();
        assert_eq!(r.opt, 1.0);
        assert_eq!(r.best_eq, 1.0);
        assert_eq!(r.worst_eq, 1.0);
    }

    #[test]
    fn chain_accepts_valid_measures() {
        sample().verify_chain().unwrap();
    }

    #[test]
    fn chain_rejects_opt_p_below_opt_c() {
        let mut m = sample();
        m.opt_p = 1.0;
        let err = m.verify_chain().unwrap_err();
        assert_eq!(err.link, "optC ≤ optP");
        assert!(err.to_string().contains("Observation 2.2"));
    }

    #[test]
    fn chain_rejects_best_above_worst() {
        let mut m = sample();
        m.worst_eq_p = 4.5;
        let err = m.verify_chain().unwrap_err();
        assert_eq!(err.link, "best-eqP ≤ worst-eqP");
    }

    #[test]
    fn chain_tolerates_floating_point_noise() {
        let mut m = sample();
        m.opt_p = m.opt_c - 1e-13;
        m.best_eq_p = m.opt_p;
        m.worst_eq_p = m.opt_p;
        m.verify_chain().unwrap();
    }
}
