//! Wire-codec ([`Encode`]/[`Decode`]) implementations for the core
//! types: [`MatrixFormGame`], [`BayesianGame`], [`Measures`], [`Budget`],
//! [`Backend`], [`SymmetryMode`], [`SolverConfig`], [`OrbitStats`], and
//! [`SolveReport`].
//!
//! The representation is the canonical JSON of [`bi_util::json`]:
//! deterministic canonical bytes (sorted keys, shortest-round-trip
//! numbers) make `Encode::canonical_bytes` a content address — two games
//! hash alike iff they encode alike. Conventions:
//!
//! * `u64`/`u128` quantities (seeds, budgets, profile counts) are decimal
//!   **strings** — JSON numbers are `f64` and would lose precision;
//! * small structural integers (action counts, type indices, threads) are
//!   plain numbers;
//! * costs may be `Infinity` (the codec's one JSON extension); NaN is
//!   rejected;
//! * decoding routes through the same constructors as in-process building
//!   ([`BayesianGame::new`], …), so a decoded game passes exactly the
//!   validation a hand-built one does.
//!
//! # Examples
//!
//! ```
//! use bi_core::game::MatrixFormGame;
//! use bi_util::{Decode, Encode};
//!
//! let g = MatrixFormGame::from_fn(2, &[2, 2], |i, a| (i + a[0] + a[1]) as f64);
//! let decoded = MatrixFormGame::decode(&g.encode()).unwrap();
//! assert_eq!(decoded, g);
//! ```

use bi_util::json::{
    field, field_arr, field_bool, field_f64, field_str, field_u128, field_u64, field_usize,
};
use bi_util::{CodecError, Decode, Encode, Json};

use crate::bayesian::BayesianGame;
use crate::game::{MatrixFormGame, MAX_ENUMERATION};
use crate::measures::Measures;
use crate::solve::{Backend, Budget, OrbitStats, SolveReport, Solver, SolverConfig};
use crate::symmetry::SymmetryMode;

/// Largest total number of `(agent, type)` slots a wire game may
/// declare. `BayesianGame::new` allocates marginals of this size, and a
/// hostile constant-size body (`"type_counts": [9e15]` is a dozen bytes)
/// must not force that allocation unbounded.
pub const MAX_WIRE_TYPE_SLOTS: usize = 100_000;

impl Encode for Measures {
    fn encode(&self) -> Json {
        Json::Obj(vec![
            ("opt_p".into(), Json::num(self.opt_p)),
            ("best_eq_p".into(), Json::num(self.best_eq_p)),
            ("worst_eq_p".into(), Json::num(self.worst_eq_p)),
            ("opt_c".into(), Json::num(self.opt_c)),
            ("best_eq_c".into(), Json::num(self.best_eq_c)),
            ("worst_eq_c".into(), Json::num(self.worst_eq_c)),
        ])
    }
}

impl Decode for Measures {
    fn decode(v: &Json) -> Result<Self, CodecError> {
        Ok(Measures {
            opt_p: field_f64(v, "opt_p")?,
            best_eq_p: field_f64(v, "best_eq_p")?,
            worst_eq_p: field_f64(v, "worst_eq_p")?,
            opt_c: field_f64(v, "opt_c")?,
            best_eq_c: field_f64(v, "best_eq_c")?,
            worst_eq_c: field_f64(v, "worst_eq_c")?,
        })
    }
}

impl Encode for Budget {
    fn encode(&self) -> Json {
        Json::Obj(vec![
            ("max_profiles".into(), Json::from_u128(self.max_profiles)),
            ("max_iterations".into(), Json::from_u64(self.max_iterations)),
        ])
    }
}

impl Decode for Budget {
    fn decode(v: &Json) -> Result<Self, CodecError> {
        Ok(Budget {
            max_profiles: field_u128(v, "max_profiles")?,
            max_iterations: field_u64(v, "max_iterations")?,
        })
    }
}

impl Encode for Backend {
    fn encode(&self) -> Json {
        match *self {
            Backend::ExhaustiveEnum => Json::Obj(vec![("kind".into(), Json::str("exhaustive"))]),
            Backend::BestResponseDynamics { restarts, seed } => Json::Obj(vec![
                ("kind".into(), Json::str("best_response")),
                ("restarts".into(), Json::num(f64::from(restarts))),
                ("seed".into(), Json::from_u64(seed)),
            ]),
            Backend::MonteCarloSampling { samples, seed } => Json::Obj(vec![
                ("kind".into(), Json::str("monte_carlo")),
                ("samples".into(), Json::num(f64::from(samples))),
                ("seed".into(), Json::from_u64(seed)),
            ]),
        }
    }
}

/// A `u32` structural field (restarts, samples): a plain JSON number.
fn field_u32(v: &Json, key: &str) -> Result<u32, CodecError> {
    let n = field_usize(v, key)?;
    u32::try_from(n).map_err(|_| CodecError::new(format!("field `{key}` exceeds u32")))
}

impl Decode for Backend {
    fn decode(v: &Json) -> Result<Self, CodecError> {
        match field_str(v, "kind")? {
            "exhaustive" => Ok(Backend::ExhaustiveEnum),
            "best_response" => Ok(Backend::BestResponseDynamics {
                restarts: field_u32(v, "restarts")?,
                seed: field_u64(v, "seed")?,
            }),
            "monte_carlo" => Ok(Backend::MonteCarloSampling {
                samples: field_u32(v, "samples")?,
                seed: field_u64(v, "seed")?,
            }),
            other => Err(CodecError::new(format!("unknown backend kind `{other}`"))),
        }
    }
}

impl Encode for SymmetryMode {
    fn encode(&self) -> Json {
        Json::str(match self {
            SymmetryMode::Off => "off",
            SymmetryMode::Auto => "auto",
        })
    }
}

impl Decode for SymmetryMode {
    fn decode(v: &Json) -> Result<Self, CodecError> {
        match v.as_str() {
            Some("off") => Ok(SymmetryMode::Off),
            Some("auto") => Ok(SymmetryMode::Auto),
            Some(other) => Err(CodecError::new(format!("unknown symmetry mode `{other}`"))),
            None => Err(CodecError::new("symmetry mode must be a string")),
        }
    }
}

impl Encode for SolverConfig {
    fn encode(&self) -> Json {
        Json::Obj(vec![
            ("backend".into(), self.backend.encode()),
            ("budget".into(), self.budget.encode()),
            ("symmetry".into(), self.symmetry.encode()),
            ("threads".into(), Json::num(self.threads as f64)),
        ])
    }
}

impl Decode for SolverConfig {
    fn decode(v: &Json) -> Result<Self, CodecError> {
        // Tolerant of pre-symmetry wire bodies: a missing `symmetry`
        // field decodes as the default `Off` (the behavior those
        // configs had when encoded).
        let symmetry = match field(v, "symmetry") {
            Ok(mode) => SymmetryMode::decode(mode).map_err(|e| e.context("symmetry"))?,
            Err(_) => SymmetryMode::Off,
        };
        Ok(SolverConfig {
            backend: Backend::decode(field(v, "backend")?).map_err(|e| e.context("backend"))?,
            budget: Budget::decode(field(v, "budget")?).map_err(|e| e.context("budget"))?,
            symmetry,
            threads: field_usize(v, "threads")?,
        })
    }
}

impl Encode for Solver {
    fn encode(&self) -> Json {
        self.config().encode()
    }
}

impl Decode for Solver {
    fn decode(v: &Json) -> Result<Self, CodecError> {
        SolverConfig::decode(v).map(Solver::from_config)
    }
}

impl Encode for OrbitStats {
    fn encode(&self) -> Json {
        Json::Obj(vec![
            (
                "orbits_evaluated".into(),
                Json::from_u128(self.orbits_evaluated),
            ),
            (
                "profiles_represented".into(),
                Json::from_u128(self.profiles_represented),
            ),
            ("group_order".into(), Json::from_u128(self.group_order)),
        ])
    }
}

impl Decode for OrbitStats {
    fn decode(v: &Json) -> Result<Self, CodecError> {
        Ok(OrbitStats {
            orbits_evaluated: field_u128(v, "orbits_evaluated")?,
            profiles_represented: field_u128(v, "profiles_represented")?,
            group_order: field_u128(v, "group_order")?,
        })
    }
}

impl Encode for SolveReport {
    fn encode(&self) -> Json {
        Json::Obj(vec![
            ("measures".into(), self.measures.encode()),
            ("method".into(), self.method.encode()),
            (
                "profiles_evaluated".into(),
                Json::from_u128(self.profiles_evaluated),
            ),
            ("exact".into(), Json::Bool(self.exact)),
            (
                "sample_cap".into(),
                self.sample_cap.map_or(Json::Null, Json::from_u64),
            ),
            (
                "orbit".into(),
                self.orbit.as_ref().map_or(Json::Null, Encode::encode),
            ),
        ])
    }
}

impl Decode for SolveReport {
    fn decode(v: &Json) -> Result<Self, CodecError> {
        let sample_cap = match field(v, "sample_cap")? {
            Json::Null => None,
            other => Some(other.as_u64().ok_or_else(|| {
                CodecError::new("field `sample_cap` must be null or a decimal string (u64)")
            })?),
        };
        // Tolerant of pre-symmetry wire bodies: a missing `orbit` field
        // decodes as `None` (those sweeps never reduced by orbits).
        let orbit = match field(v, "orbit") {
            Ok(Json::Null) | Err(_) => None,
            Ok(other) => Some(OrbitStats::decode(other).map_err(|e| e.context("orbit"))?),
        };
        Ok(SolveReport {
            measures: Measures::decode(field(v, "measures")?).map_err(|e| e.context("measures"))?,
            method: Backend::decode(field(v, "method")?).map_err(|e| e.context("method"))?,
            profiles_evaluated: field_u128(v, "profiles_evaluated")?,
            exact: field_bool(v, "exact")?,
            sample_cap,
            orbit,
        })
    }
}

impl Encode for MatrixFormGame {
    fn encode(&self) -> Json {
        let action_counts = Json::Arr(
            self.action_counts()
                .iter()
                .map(|&c| Json::num(c as f64))
                .collect(),
        );
        // `costs[i][joint]` in the game's own row-major joint-index order
        // (last agent fastest), reproduced from the public profile
        // iterator so encode/decode agree on the layout.
        let profiles: Vec<Vec<usize>> = self.profiles().collect();
        let costs = Json::Arr(
            (0..self.num_agents())
                .map(|i| {
                    Json::Arr(
                        profiles
                            .iter()
                            .map(|p| Json::num(self.cost(i, p)))
                            .collect(),
                    )
                })
                .collect(),
        );
        Json::Obj(vec![
            ("action_counts".into(), action_counts),
            ("costs".into(), costs),
        ])
    }
}

impl Decode for MatrixFormGame {
    fn decode(v: &Json) -> Result<Self, CodecError> {
        let action_counts = decode_usize_array(field_arr(v, "action_counts")?, "action_counts")?;
        if action_counts.is_empty() {
            return Err(CodecError::new(
                "`action_counts` must name at least one agent",
            ));
        }
        if action_counts.contains(&0) {
            return Err(CodecError::new("every agent needs at least one action"));
        }
        let size = action_counts
            .iter()
            .try_fold(1u128, |acc, &c| acc.checked_mul(c as u128))
            .filter(|&s| s <= MAX_ENUMERATION)
            .ok_or_else(|| CodecError::new("joint action space exceeds the enumeration limit"))?
            as usize;
        let agents = action_counts.len();
        let cost_rows = field_arr(v, "costs")?;
        if cost_rows.len() != agents {
            return Err(CodecError::new(format!(
                "`costs` must have one row per agent ({agents}), got {}",
                cost_rows.len()
            )));
        }
        let mut costs: Vec<Vec<f64>> = Vec::with_capacity(agents);
        for (i, row) in cost_rows.iter().enumerate() {
            let row = row
                .as_arr()
                .ok_or_else(|| CodecError::new(format!("`costs[{i}]` must be an array")))?;
            if row.len() != size {
                return Err(CodecError::new(format!(
                    "`costs[{i}]` must have {size} entries, got {}",
                    row.len()
                )));
            }
            let parsed: Result<Vec<f64>, CodecError> = row
                .iter()
                .map(|c| {
                    // `Json::Num(NAN)` can only be built by hand (the
                    // parser and `Json::num` both reject NaN), but decode
                    // must error rather than panic in `from_fn`.
                    c.as_f64()
                        .filter(|v| !v.is_nan())
                        .ok_or_else(|| CodecError::new(format!("`costs[{i}]` has a non-number")))
                })
                .collect();
            costs.push(parsed?);
        }
        // Joint-index layout: row-major, last agent fastest — the same
        // order `MatrixFormGame::profiles()` visits, which `from_fn`
        // enumerates.
        let mut strides = vec![1usize; agents];
        for i in (0..agents.saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * action_counts[i + 1];
        }
        Ok(MatrixFormGame::from_fn(agents, &action_counts, |i, p| {
            let idx: usize = p.iter().zip(&strides).map(|(&a, &s)| a * s).sum();
            costs[i][idx]
        }))
    }
}

impl Encode for BayesianGame {
    fn encode(&self) -> Json {
        let support = Json::Arr(
            (0..self.support_len())
                .map(|idx| {
                    let (types, prob, game) = self.state(idx);
                    Json::Obj(vec![
                        (
                            "types".into(),
                            Json::Arr(types.iter().map(|&t| Json::num(t as f64)).collect()),
                        ),
                        ("prob".into(), Json::num(prob)),
                        ("game".into(), game.encode()),
                    ])
                })
                .collect(),
        );
        Json::Obj(vec![
            (
                "type_counts".into(),
                Json::Arr(
                    self.type_counts()
                        .iter()
                        .map(|&c| Json::num(c as f64))
                        .collect(),
                ),
            ),
            ("support".into(), support),
        ])
    }
}

impl Decode for BayesianGame {
    fn decode(v: &Json) -> Result<Self, CodecError> {
        let type_counts = decode_usize_array(field_arr(v, "type_counts")?, "type_counts")?;
        let total_slots = type_counts
            .iter()
            .try_fold(0usize, |acc, &c| acc.checked_add(c))
            .filter(|&t| t <= MAX_WIRE_TYPE_SLOTS);
        if total_slots.is_none() {
            return Err(CodecError::new(format!(
                "`type_counts` declares more than {MAX_WIRE_TYPE_SLOTS} type slots"
            )));
        }
        let mut support = Vec::new();
        for (idx, state) in field_arr(v, "support")?.iter().enumerate() {
            let ctx = |e: CodecError| e.context(&format!("support[{idx}]"));
            let types = decode_usize_array(field_arr(state, "types").map_err(ctx)?, "types")
                .map_err(ctx)?;
            let prob = field_f64(state, "prob").map_err(ctx)?;
            let game = MatrixFormGame::decode(field(state, "game").map_err(ctx)?).map_err(ctx)?;
            support.push((types, prob, game));
        }
        BayesianGame::new(type_counts, support)
            .map_err(|e| CodecError::new(format!("invalid Bayesian game: {e}")))
    }
}

/// Decodes an array of exact non-negative integers.
fn decode_usize_array(items: &[Json], what: &str) -> Result<Vec<usize>, CodecError> {
    items
        .iter()
        .map(|v| {
            v.as_usize().ok_or_else(|| {
                CodecError::new(format!("`{what}` must contain non-negative integers"))
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random_games::random_bayesian_potential_game;

    #[test]
    fn matrix_game_round_trips_including_infinities() {
        let g = MatrixFormGame::from_fn(2, &[2, 3], |i, a| {
            if i == 0 && a == [1, 2] {
                f64::INFINITY
            } else {
                (i + a[0] * 10 + a[1]) as f64
            }
        });
        let decoded = MatrixFormGame::decode(&g.encode()).unwrap();
        assert_eq!(decoded, g);
        assert_eq!(decoded.canonical_bytes(), g.canonical_bytes());
    }

    #[test]
    fn bayesian_game_round_trips_and_revalidates() {
        for seed in 0..4 {
            let (game, _) = random_bayesian_potential_game(&[2, 2], &[2, 2], 3, seed);
            let encoded = game.encode();
            let decoded = BayesianGame::decode(&encoded).unwrap();
            // `BayesianGame` has no `PartialEq`; canonical bytes are the
            // equality the cache relies on.
            assert_eq!(decoded.canonical_bytes(), game.canonical_bytes());
            // And the decoded game solves identically.
            let a = Solver::default().solve(&game).unwrap();
            let b = Solver::default().solve(&decoded).unwrap();
            assert_eq!(a.measures, b.measures, "seed {seed}");
        }
    }

    #[test]
    fn backend_and_config_round_trip() {
        let backends = [
            Backend::ExhaustiveEnum,
            Backend::BestResponseDynamics {
                restarts: 7,
                seed: u64::MAX,
            },
            Backend::MonteCarloSampling {
                samples: 128,
                seed: 42,
            },
        ];
        for backend in backends {
            assert_eq!(Backend::decode(&backend.encode()).unwrap(), backend);
            for symmetry in [SymmetryMode::Off, SymmetryMode::Auto] {
                let config = SolverConfig {
                    backend,
                    budget: Budget {
                        max_profiles: u128::MAX,
                        max_iterations: u64::MAX,
                    },
                    symmetry,
                    threads: 2,
                };
                assert_eq!(SolverConfig::decode(&config.encode()).unwrap(), config);
                let solver = Solver::decode(&Solver::from_config(config).encode()).unwrap();
                assert_eq!(solver.config(), config);
            }
        }
    }

    #[test]
    fn pre_symmetry_wire_bodies_still_decode() {
        // Configs and reports encoded before the `symmetry`/`orbit`
        // fields existed must keep decoding, with the behavior they had
        // when encoded.
        let old_config = r#"{"backend":{"kind":"exhaustive"},
            "budget":{"max_iterations":"1","max_profiles":"1"},"threads":4}"#;
        let config = SolverConfig::decode_str(old_config).unwrap();
        assert_eq!(config.symmetry, SymmetryMode::Off);
        let old_report = r#"{"exact":true,
            "measures":{"best_eq_c":0,"best_eq_p":0,"opt_c":0,"opt_p":0,
                        "worst_eq_c":0,"worst_eq_p":0},
            "method":{"kind":"exhaustive"},"profiles_evaluated":"8","sample_cap":null}"#;
        let report = SolveReport::decode_str(old_report).unwrap();
        assert_eq!(report.orbit, None);
        assert!(SolverConfig::decode_str(
            r#"{"backend":{"kind":"exhaustive"},
            "budget":{"max_iterations":"1","max_profiles":"1"},
            "symmetry":"sideways","threads":1}"#
        )
        .is_err());
    }

    #[test]
    fn report_and_measures_round_trip() {
        let report = SolveReport {
            measures: Measures {
                opt_p: 1.25,
                best_eq_p: 1.5,
                worst_eq_p: f64::INFINITY,
                opt_c: 1.0,
                best_eq_c: 1.25,
                worst_eq_c: 2.0,
            },
            method: Backend::MonteCarloSampling {
                samples: 64,
                seed: 3,
            },
            profiles_evaluated: u128::from(u64::MAX) + 7,
            exact: false,
            sample_cap: Some(12),
            orbit: Some(OrbitStats {
                orbits_evaluated: 9,
                profiles_represented: u128::from(u64::MAX) * 3,
                group_order: 720,
            }),
        };
        let decoded = SolveReport::decode(&report.encode()).unwrap();
        assert_eq!(decoded, report);
        let no_cap = SolveReport {
            sample_cap: None,
            orbit: None,
            ..report
        };
        assert_eq!(SolveReport::decode(&no_cap.encode()).unwrap(), no_cap);
    }

    #[test]
    fn decode_str_parses_and_decodes() {
        let m = Measures {
            opt_p: 2.0,
            best_eq_p: 2.0,
            worst_eq_p: 3.0,
            opt_c: 1.0,
            best_eq_c: 1.5,
            worst_eq_c: 4.0,
        };
        let text = m.encode().canonical_string();
        assert_eq!(Measures::decode_str(&text).unwrap(), m);
        assert!(Measures::decode_str("{not json").is_err());
    }

    #[test]
    fn malformed_games_are_rejected_with_context() {
        let cases = [
            (r#"{"action_counts":[],"costs":[]}"#, "at least one agent"),
            (
                r#"{"action_counts":[0],"costs":[[1]]}"#,
                "at least one action",
            ),
            (r#"{"action_counts":[2],"costs":[]}"#, "one row per agent"),
            (r#"{"action_counts":[2],"costs":[[1]]}"#, "2 entries"),
            (r#"{"action_counts":[2],"costs":[[1,"x"]]}"#, "non-number"),
            (r#"{"action_counts":[2]}"#, "missing field `costs`"),
            (
                r#"{"action_counts":[3000,3000,3000,3000,3000],"costs":[[],[],[],[],[]]}"#,
                "enumeration limit",
            ),
        ];
        for (input, want) in cases {
            let err = MatrixFormGame::decode_str(input).unwrap_err();
            assert!(
                err.to_string().contains(want),
                "{input}: got `{err}`, wanted `{want}`"
            );
        }
        let bad_prior = r#"{"type_counts":[1],"support":[
            {"types":[0],"prob":0.5,"game":{"action_counts":[1],"costs":[[0]]}}
        ]}"#;
        let err = BayesianGame::decode_str(bad_prior).unwrap_err();
        assert!(err.to_string().contains("invalid Bayesian game"));
        let bad_state = r#"{"type_counts":[1],"support":[{"types":[0],"prob":1}]}"#;
        let err = BayesianGame::decode_str(bad_state).unwrap_err();
        assert!(err.to_string().contains("support[0]"));
        // A hostile constant-size body must not force a huge marginals
        // allocation.
        let huge_types = r#"{"type_counts":[9007199254740991],"support":[
            {"types":[0],"prob":1,"game":{"action_counts":[1],"costs":[[0]]}}
        ]}"#;
        let err = BayesianGame::decode_str(huge_types).unwrap_err();
        assert!(err.to_string().contains("type slots"));
    }
}
