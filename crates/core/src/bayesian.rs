//! Bayesian games with explicit common priors, exactly as in Section 2 of
//! the paper.

use std::fmt;

use bi_util::approx_eq;

use crate::compiled::{CompiledSpace, EvalKernel, Lowered, SlotStep};
use crate::game::{EnumerationError, MatrixFormGame, ProfileIter, MAX_ENUMERATION};
use crate::measures::Measures;
use crate::model::{BayesianModel, CompleteInfo};
use crate::nash;
use crate::solve::{SolveError, Solver};

/// A pure strategy profile: `profile[i][τ]` is the action agent `i` plays
/// on observing type `τ`.
pub type StrategyProfile = Vec<Vec<usize>>;

/// Errors constructing a [`BayesianGame`].
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum BayesianGameError {
    /// The support is empty or probabilities do not sum to 1.
    BadPrior(String),
    /// A state's game does not match the declared agents/actions.
    MismatchedState(usize),
    /// A type index exceeds its agent's type-space size.
    TypeOutOfRange {
        /// The support-state index containing the bad type profile.
        state: usize,
        /// The agent whose type index is out of range.
        agent: usize,
    },
    /// The same type profile appears twice in the support.
    DuplicateState(usize),
}

impl fmt::Display for BayesianGameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BayesianGameError::BadPrior(msg) => write!(f, "invalid prior: {msg}"),
            BayesianGameError::MismatchedState(i) => {
                write!(f, "state {i} disagrees with the declared action spaces")
            }
            BayesianGameError::TypeOutOfRange { state, agent } => {
                write!(f, "state {state}: type of agent {agent} out of range")
            }
            BayesianGameError::DuplicateState(i) => {
                write!(f, "state {i} duplicates an earlier type profile")
            }
        }
    }
}

impl std::error::Error for BayesianGameError {}

/// Errors from exact measure computation.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum MeasureError {
    /// Enumeration would exceed the workspace limit.
    TooLarge(EnumerationError),
    /// Some underlying game has no pure Nash equilibrium, so `best-eqC` /
    /// `worst-eqC` are undefined (the paper restricts attention to games
    /// whose underlying games all admit pure equilibria).
    NoPureEquilibrium {
        /// The support-state index of the equilibrium-free underlying game.
        state: usize,
    },
    /// No pure Bayesian equilibrium exists (cannot happen for potential
    /// games, but the framework admits arbitrary cost functions).
    NoBayesianEquilibrium,
    /// The unified solver failed in a way with no measure-specific
    /// mapping (kept as a message; the typed error is
    /// [`crate::solve::SolveError`] — call [`Solver::solve`] directly for
    /// structured handling).
    Solver(String),
}

impl fmt::Display for MeasureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MeasureError::TooLarge(e) => write!(f, "{e}"),
            MeasureError::NoPureEquilibrium { state } => {
                write!(f, "underlying game {state} has no pure Nash equilibrium")
            }
            MeasureError::NoBayesianEquilibrium => {
                write!(f, "the Bayesian game has no pure Bayesian equilibrium")
            }
            MeasureError::Solver(msg) => write!(f, "solver error: {msg}"),
        }
    }
}

impl std::error::Error for MeasureError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MeasureError::TooLarge(e) => Some(e),
            _ => None,
        }
    }
}

impl From<EnumerationError> for MeasureError {
    fn from(e: EnumerationError) -> Self {
        MeasureError::TooLarge(e)
    }
}

#[derive(Clone, Debug)]
struct State {
    types: Vec<usize>,
    prob: f64,
    game: MatrixFormGame,
}

/// A finite Bayesian game `⟨k, {A_i}, {T_i}, {C_{i,t}}, p⟩` with the prior
/// given explicitly as a support of `(type profile, probability, game)`
/// triples.
///
/// Type profiles outside the support have probability zero and need not be
/// listed. All underlying games must share the same agent count and action
/// spaces (the paper's `A_i` do not vary with the state).
///
/// # Examples
///
/// ```
/// use bi_core::bayesian::BayesianGame;
/// use bi_core::game::MatrixFormGame;
///
/// let g = MatrixFormGame::from_fn(2, &[2, 2], |_, a| (a[0] + a[1]) as f64);
/// let game = BayesianGame::new(
///     vec![1, 2],
///     vec![
///         (vec![0, 0], 0.5, g.clone()),
///         (vec![0, 1], 0.5, g),
///     ],
/// ).unwrap();
/// assert_eq!(game.num_agents(), 2);
/// let s = vec![vec![0], vec![0, 0]];
/// assert_eq!(game.social_cost(&s), 0.0);
/// ```
#[derive(Clone, Debug)]
pub struct BayesianGame {
    type_counts: Vec<usize>,
    action_counts: Vec<usize>,
    states: Vec<State>,
    /// `marginals[i][τ] = P(t_i = τ)`.
    marginals: Vec<Vec<f64>>,
}

impl BayesianGame {
    /// Builds a Bayesian game from its type-space sizes and prior support.
    ///
    /// States with probability 0 are dropped. Probabilities must be
    /// non-negative and sum to 1 (within tolerance).
    ///
    /// # Errors
    ///
    /// See [`BayesianGameError`].
    pub fn new(
        type_counts: Vec<usize>,
        support: Vec<(Vec<usize>, f64, MatrixFormGame)>,
    ) -> Result<Self, BayesianGameError> {
        if support.is_empty() {
            return Err(BayesianGameError::BadPrior("empty support".into()));
        }
        let k = type_counts.len();
        let total: f64 = support.iter().map(|(_, p, _)| p).sum();
        if !approx_eq(total, 1.0) {
            return Err(BayesianGameError::BadPrior(format!(
                "probabilities sum to {total}, expected 1"
            )));
        }
        let action_counts = support[0].2.action_counts().to_vec();
        let mut states = Vec::with_capacity(support.len());
        let mut seen: Vec<&Vec<usize>> = Vec::new();
        for (idx, (types, prob, game)) in support.iter().enumerate() {
            if *prob < 0.0 {
                return Err(BayesianGameError::BadPrior(format!(
                    "state {idx} has negative probability"
                )));
            }
            if types.len() != k
                || game.num_agents() != k
                || game.action_counts() != action_counts.as_slice()
            {
                return Err(BayesianGameError::MismatchedState(idx));
            }
            for (agent, (&t, &count)) in types.iter().zip(&type_counts).enumerate() {
                if t >= count {
                    return Err(BayesianGameError::TypeOutOfRange { state: idx, agent });
                }
            }
            if seen.contains(&types) {
                return Err(BayesianGameError::DuplicateState(idx));
            }
            seen.push(types);
        }
        for (types, prob, game) in support {
            if prob > 0.0 {
                states.push(State { types, prob, game });
            }
        }
        if states.is_empty() {
            return Err(BayesianGameError::BadPrior(
                "all support states have probability zero".into(),
            ));
        }
        let mut marginals: Vec<Vec<f64>> = type_counts.iter().map(|&c| vec![0.0; c]).collect();
        for state in &states {
            for (i, &t) in state.types.iter().enumerate() {
                marginals[i][t] += state.prob;
            }
        }
        Ok(BayesianGame {
            type_counts,
            action_counts,
            states,
            marginals,
        })
    }

    /// Number of agents `k`.
    #[must_use]
    pub fn num_agents(&self) -> usize {
        self.type_counts.len()
    }

    /// Per-agent type-space sizes `|T_i|`.
    #[must_use]
    pub fn type_counts(&self) -> &[usize] {
        &self.type_counts
    }

    /// Per-agent action-space sizes `|A_i|`.
    #[must_use]
    pub fn action_counts(&self) -> &[usize] {
        &self.action_counts
    }

    /// Number of states in the prior support.
    #[must_use]
    pub fn support_len(&self) -> usize {
        self.states.len()
    }

    /// The `idx`-th support state as `(type profile, probability, game)`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    #[must_use]
    pub fn state(&self, idx: usize) -> (&[usize], f64, &MatrixFormGame) {
        let s = &self.states[idx];
        (&s.types, s.prob, &s.game)
    }

    /// Marginal probability `P(t_i = τ)`.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `τ` is out of range.
    #[must_use]
    pub fn marginal(&self, i: usize, tau: usize) -> f64 {
        self.marginals[i][tau]
    }

    /// The action profile a strategy profile induces in a given state.
    fn induced<'a>(
        &self,
        s: &StrategyProfile,
        types: &[usize],
        buf: &'a mut Vec<usize>,
    ) -> &'a [usize] {
        buf.clear();
        buf.extend(s.iter().zip(types).map(|(si, &t)| si[t]));
        buf
    }

    /// Ex-ante expected cost `C_i(s)` of agent `i`.
    ///
    /// # Panics
    ///
    /// Panics if the strategy shape does not match the game.
    #[must_use]
    pub fn expected_cost(&self, i: usize, s: &StrategyProfile) -> f64 {
        self.check_strategy(s);
        let mut buf = Vec::with_capacity(self.num_agents());
        self.states
            .iter()
            .map(|st| {
                let a = self.induced(s, &st.types, &mut buf);
                st.prob * st.game.cost(i, a)
            })
            .sum()
    }

    /// Social cost `K(s) = Σ_i C_i(s) = E_t[K_t(s(t))]`.
    ///
    /// # Panics
    ///
    /// Panics if the strategy shape does not match the game.
    #[must_use]
    pub fn social_cost(&self, s: &StrategyProfile) -> f64 {
        self.check_strategy(s);
        let mut buf = Vec::with_capacity(self.num_agents());
        self.states
            .iter()
            .map(|st| {
                let a = self.induced(s, &st.types, &mut buf);
                st.prob * st.game.social_cost(a)
            })
            .sum()
    }

    /// Unnormalized interim cost of agent `i` of playing `action` at type
    /// `τ` while everyone else follows `s`:
    /// `Σ_{t : t_i = τ} p(t) · C_{i,t}(s₋ᵢ(t₋ᵢ), action)`.
    ///
    /// Normalizing by `P(t_i = τ)` gives the conditional expectation the
    /// paper uses; the normalization constant does not affect comparisons
    /// between actions, so it is omitted.
    #[must_use]
    pub fn interim_cost(&self, i: usize, tau: usize, action: usize, s: &StrategyProfile) -> f64 {
        self.check_strategy(s);
        assert!(tau < self.type_counts[i], "type out of range");
        assert!(action < self.action_counts[i], "action out of range");
        let mut buf = Vec::with_capacity(self.num_agents());
        self.states
            .iter()
            .filter(|st| st.types[i] == tau)
            .map(|st| {
                self.induced(s, &st.types, &mut buf);
                buf[i] = action;
                st.prob * st.game.cost(i, &buf)
            })
            .sum()
    }

    /// Whether `s` is a pure Bayesian equilibrium: for every agent and
    /// every positive-probability type, the played action minimizes the
    /// interim cost (up to tolerance). Routed through
    /// [`BayesianModel::is_equilibrium`].
    ///
    /// # Panics
    ///
    /// Panics if the strategy shape does not match the game.
    #[must_use]
    pub fn is_bayesian_equilibrium(&self, s: &StrategyProfile) -> bool {
        self.check_strategy(s);
        BayesianModel::is_equilibrium(self, s)
    }

    /// The best response of agent `i` to `s`: for each type, an action
    /// minimizing the interim cost (ties to the smallest index;
    /// zero-probability types keep their current action).
    #[must_use]
    pub fn best_response(&self, i: usize, s: &StrategyProfile) -> Vec<usize> {
        (0..self.type_counts[i])
            .map(|tau| {
                if self.marginals[i][tau] == 0.0 {
                    return s[i][tau];
                }
                BayesianModel::best_response(self, i, tau, s).0
            })
            .collect()
    }

    /// Iterated best-response dynamics from `start`, for at most
    /// `max_rounds` full sweeps. Returns the reached strategy profile if it
    /// is a Bayesian equilibrium, otherwise `None`. Routed through
    /// [`BayesianModel::best_response_dynamics`].
    ///
    /// For Bayesian potential games (every NCS game is one) each strict
    /// improvement decreases the expected potential, so this converges.
    #[must_use]
    pub fn best_response_dynamics(
        &self,
        start: StrategyProfile,
        max_rounds: usize,
    ) -> Option<StrategyProfile> {
        BayesianModel::best_response_dynamics(self, start, max_rounds)
    }

    /// Iterates over every pure strategy profile (zero-probability types
    /// pinned to action 0).
    ///
    /// # Errors
    ///
    /// Returns an [`EnumerationError`] when the strategy space exceeds the
    /// enumeration limit.
    pub fn strategies(&self) -> Result<StrategyIter<'_>, EnumerationError> {
        let size = BayesianModel::strategy_space_size(self).map_err(|_| EnumerationError {
            required: u128::MAX,
        })?;
        if size > MAX_ENUMERATION {
            return Err(EnumerationError { required: size });
        }
        let mut slots = Vec::new();
        for i in 0..self.num_agents() {
            for tau in 0..self.type_counts[i] {
                if self.marginals[i][tau] > 0.0 {
                    slots.push((i, tau));
                }
            }
        }
        let bases: Vec<usize> = slots.iter().map(|&(i, _)| self.action_counts[i]).collect();
        Ok(StrategyIter {
            game: self,
            slots,
            inner: ProfileIter::new(bases),
        })
    }

    /// Computes all six measures exactly by enumeration.
    ///
    /// This is a thin compatibility wrapper over
    /// `Solver::default().solve(&game)` — prefer [`Solver`] directly for
    /// budgets, sampled backends, multi-threaded sweeps, and the
    /// structured [`crate::solve::SolveReport`].
    ///
    /// # Errors
    ///
    /// Returns [`MeasureError::TooLarge`] when a required enumeration is
    /// infeasible, [`MeasureError::NoPureEquilibrium`] when some underlying
    /// game has no pure Nash equilibrium, and
    /// [`MeasureError::NoBayesianEquilibrium`] when the Bayesian game has
    /// no pure Bayesian equilibrium.
    pub fn measures(&self) -> Result<Measures, MeasureError> {
        match Solver::default().solve(self) {
            Ok(report) => Ok(report.measures),
            Err(e) => Err(match e {
                SolveError::BudgetExceeded { required, .. } => {
                    MeasureError::TooLarge(EnumerationError { required })
                }
                SolveError::SpaceTooLarge => MeasureError::TooLarge(EnumerationError {
                    required: u128::MAX,
                }),
                SolveError::NoEquilibrium => MeasureError::NoBayesianEquilibrium,
                SolveError::NoStateEquilibrium { state } => {
                    MeasureError::NoPureEquilibrium { state }
                }
                other => MeasureError::Solver(other.to_string()),
            }),
        }
    }

    fn check_strategy(&self, s: &StrategyProfile) {
        assert_eq!(s.len(), self.num_agents(), "strategy profile length");
        for (i, si) in s.iter().enumerate() {
            assert_eq!(si.len(), self.type_counts[i], "strategy of agent {i}");
            for &a in si {
                assert!(a < self.action_counts[i], "action out of range");
            }
        }
    }
}

impl BayesianModel for BayesianGame {
    type Action = usize;

    fn num_agents(&self) -> usize {
        self.type_counts.len()
    }

    fn type_count(&self, agent: usize) -> usize {
        self.type_counts[agent]
    }

    fn type_weight(&self, agent: usize, tau: usize) -> f64 {
        self.marginals[agent][tau]
    }

    fn candidate_actions(&self, agent: usize, tau: usize) -> Result<Vec<usize>, SolveError> {
        // Zero-probability types are pinned to action 0: their action
        // never affects any cost, so a single candidate suffices.
        if self.marginals[agent][tau] == 0.0 {
            Ok(vec![0])
        } else {
            Ok((0..self.action_counts[agent]).collect())
        }
    }

    fn candidate_count(&self, agent: usize, tau: usize) -> Result<usize, SolveError> {
        if self.marginals[agent][tau] == 0.0 {
            Ok(1)
        } else {
            Ok(self.action_counts[agent])
        }
    }

    fn social_cost(&self, profile: &StrategyProfile) -> f64 {
        BayesianGame::social_cost(self, profile)
    }

    fn interim_cost(
        &self,
        agent: usize,
        tau: usize,
        action: &usize,
        profile: &StrategyProfile,
    ) -> f64 {
        BayesianGame::interim_cost(self, agent, tau, *action, profile)
    }

    fn best_response(&self, agent: usize, tau: usize, profile: &StrategyProfile) -> (usize, f64) {
        // Ties to the smallest index: a later action must improve by more
        // than the workspace tolerance to dethrone an earlier one, so
        // float noise cannot change the chosen action (or the dynamics
        // trajectories built on it).
        let mut best_a = 0;
        let mut best_c = f64::INFINITY;
        for a in 0..self.action_counts[agent] {
            let c = BayesianGame::interim_cost(self, agent, tau, a, profile);
            if c < best_c - bi_util::EPS {
                best_c = c;
                best_a = a;
            }
        }
        (best_a, best_c)
    }

    fn slot_is_stable(&self, agent: usize, tau: usize, profile: &StrategyProfile) -> bool {
        // Exact over every deviation (the EPS tie-breaking in
        // `best_response` may return a cost up to EPS above the true
        // minimum, which would weaken the default check).
        let played = BayesianGame::interim_cost(self, agent, tau, profile[agent][tau], profile);
        (0..self.action_counts[agent]).all(|a| {
            let dev = BayesianGame::interim_cost(self, agent, tau, a, profile);
            dev >= played || bi_util::approx_le(played, dev)
        })
    }

    fn complete_info(&self) -> Result<CompleteInfo, SolveError> {
        let mut opt_c = 0.0;
        let mut best_eq_c = 0.0;
        let mut worst_eq_c = 0.0;
        for (idx, st) in self.states.iter().enumerate() {
            let (opt, _) = nash::social_optimum(&st.game);
            opt_c += st.prob * opt;
            let (best, worst) = nash::equilibrium_cost_range(&st.game)
                .ok_or(SolveError::NoStateEquilibrium { state: idx })?;
            best_eq_c += st.prob * best;
            worst_eq_c += st.prob * worst;
        }
        Ok(CompleteInfo {
            opt_c,
            best_eq_c,
            worst_eq_c,
        })
    }

    fn agents_interchangeable(&self, a: usize, b: usize) -> bool {
        // Exact bitwise interchangeability (see the trait contract): we
        // certify that swapping agents `a` and `b` permutes every
        // floating-point *term* of every cost computation onto an equal
        // bit pattern in the same position, which requires
        //
        //   (0) identical type structure and bitwise-equal marginals,
        //   (1) every support state fixed by the swap
        //       (`types[a] == types[b]`),
        //   (2) every agent's state cost table invariant under swapping
        //       the `a`/`b` coordinates of the joint action index, and
        //   (3) agents `a` and `b` carrying bitwise-equal cost tables.
        //
        // (2) makes social and third-party interim sums termwise
        // identical under the swap; (2)+(3) make the stability decision
        // of agent `a`'s slots under the swapped profile coincide with
        // agent `b`'s under the original.
        if a == b {
            return true;
        }
        if self.type_counts[a] != self.type_counts[b]
            || self.action_counts[a] != self.action_counts[b]
        {
            return false;
        }
        let eq = |x: f64, y: f64| x.to_bits() == y.to_bits();
        if self.marginals[a].len() != self.marginals[b].len()
            || !self.marginals[a]
                .iter()
                .zip(&self.marginals[b])
                .all(|(&x, &y)| eq(x, y))
        {
            return false;
        }
        let k = self.num_agents();
        let n = self.action_counts[a];
        self.states.iter().all(|st| {
            if st.types[a] != st.types[b] {
                return false;
            }
            let stride_a = st.game.stride(a);
            let stride_b = st.game.stride(b);
            let swap = |idx: usize| {
                let da = idx / stride_a % n;
                let db = idx / stride_b % n;
                idx - da * stride_a - db * stride_b + db * stride_a + da * stride_b
            };
            let table_a = st.game.cost_table(a);
            let table_b = st.game.cost_table(b);
            table_a.iter().zip(table_b).all(|(&x, &y)| eq(x, y))
                && (0..k).all(|l| {
                    let t = st.game.cost_table(l);
                    (0..t.len()).all(|idx| eq(t[swap(idx)], t[idx]))
                })
        })
    }

    fn interchangeable_check_cost(&self) -> u128 {
        // One check rescans every state's k cost tables under a
        // division-heavy swapped-index walk (the worst case: the pair
        // *is* interchangeable, so nothing short-circuits). The 1/80
        // constant folds two calibrations together: a swapped table
        // compare is far cheaper per element than a premultiplied sweep
        // kernel tick, and asymmetric candidate pairs short-circuit on
        // the first mismatched entry, so the caller's pessimistic
        // (num_agents - 1) pair count overstates typical work. Measured
        // anchors: detection on a dense 14-agent 2^14-profile matrix
        // game really does cost several times its sweep (must skip),
        // while a 9-agent 2^16-profile game with one interchangeable
        // pair amortizes its checks and wins (must detect).
        let k = self.num_agents() as u128;
        let table_work: u128 = self
            .states
            .iter()
            .map(|st| k * st.game.cost_table(0).len() as u128)
            .sum();
        table_work / 80
    }

    fn lower<'a>(&'a self, space: &'a CompiledSpace<Self>) -> Box<dyn Lowered + 'a> {
        Box::new(MatrixLowered::new(self, space))
    }
}

/// Cap on precomputed social-table entries (`support states × joint
/// profiles`) of [`MatrixLowered::prepare_sweep`]; past it the kernels
/// compute social costs from the per-agent tables instead of
/// materializing hundreds of megabytes of premultiplied tables.
const MATRIX_TABLE_BUDGET: usize = 1 << 22;

/// Compiled evaluation tables of a [`BayesianGame`]: per support state, a
/// premultiplied flat social-cost table addressed by strided profile
/// offsets, plus the `(slot, stride)` terms that keep each state's offset
/// maintained incrementally as the sweep odometer advances digits.
struct MatrixLowered<'a> {
    space: &'a CompiledSpace<BayesianGame>,
    states: Vec<MatrixState<'a>>,
    /// Per slot: the states the slot participates in, as
    /// `(state, stride of the slot's agent in that state)`, in state
    /// order (interim sums must preserve the legacy state iteration
    /// order bit-for-bit).
    slot_states: Vec<Vec<(usize, usize)>>,
    /// Per state, `prob · K_t(a)` per joint index — one lookup instead of
    /// `k` table reads per profile. Built by
    /// [`Lowered::prepare_sweep`] only: the tables amortize over an
    /// exhaustive sweep but would dwarf a dynamics run that evaluates a
    /// handful of profiles.
    social: std::sync::OnceLock<Vec<Vec<f64>>>,
}

struct MatrixState<'a> {
    prob: f64,
    /// Per agent, the state's raw cost table (interim sums multiply by
    /// `prob` at lookup, replicating the legacy arithmetic exactly).
    agent_tables: Vec<&'a [f64]>,
    /// `(slot, stride)` per agent: the state's joint index is
    /// `Σ digit(slot)·stride`.
    offset_terms: Vec<(usize, usize)>,
}

impl<'a> MatrixLowered<'a> {
    fn new(game: &'a BayesianGame, space: &'a CompiledSpace<BayesianGame>) -> Self {
        // Slot index of (agent, tau): slots are agent-major.
        let mut slot_base = Vec::with_capacity(game.num_agents());
        let mut acc = 0usize;
        for &count in &game.type_counts {
            slot_base.push(acc);
            acc += count;
        }
        let mut slot_states: Vec<Vec<(usize, usize)>> = vec![Vec::new(); space.num_slots()];
        let mut states = Vec::with_capacity(game.states.len());
        for (s_idx, st) in game.states.iter().enumerate() {
            let mut offset_terms = Vec::with_capacity(game.num_agents());
            for (i, &tau) in st.types.iter().enumerate() {
                let slot = slot_base[i] + tau;
                let stride = st.game.stride(i);
                offset_terms.push((slot, stride));
                slot_states[slot].push((s_idx, stride));
            }
            states.push(MatrixState {
                prob: st.prob,
                agent_tables: (0..game.num_agents())
                    .map(|i| st.game.cost_table(i))
                    .collect(),
                offset_terms,
            });
        }
        MatrixLowered {
            space,
            states,
            slot_states,
            social: std::sync::OnceLock::new(),
        }
    }
}

impl Lowered for MatrixLowered<'_> {
    fn kernel(&self) -> Box<dyn EvalKernel + '_> {
        let max_actions = (0..self.space.num_slots())
            .map(|j| self.space.slot_size(j) as usize)
            .max()
            .unwrap_or(0);
        Box::new(MatrixKernel {
            lowered: self,
            offsets: vec![0; self.states.len()],
            digits: vec![0; self.space.num_slots()],
            interim_buf: Vec::with_capacity(max_actions),
            unstable_hint: 0,
        })
    }

    fn prepare_sweep(&self) {
        let prod = self.states.first().map_or(0, |st| {
            st.agent_tables.first().map_or(0, |table| table.len())
        });
        if self
            .states
            .len()
            .checked_mul(prod)
            .is_none_or(|entries| entries > MATRIX_TABLE_BUDGET)
        {
            return;
        }
        self.social.get_or_init(|| {
            self.states
                .iter()
                .map(|st| {
                    // Same fold as `MatrixFormGame::social_cost`,
                    // premultiplied by the state's probability (the legacy
                    // outer product) — bit-identical to the on-the-fly path
                    // in `MatrixKernel::social_cost`: per entry the agent
                    // terms accumulate from 0.0 in agent order, then scale
                    // by `prob`. Structured as contiguous per-agent passes
                    // so each inner loop is a unit-stride `acc[i] += t[i]`
                    // the compiler auto-vectorizes.
                    let mut acc = vec![0.0f64; prod];
                    for table in &st.agent_tables {
                        for (v, &t) in acc.iter_mut().zip(*table) {
                            *v += t;
                        }
                    }
                    for v in &mut acc {
                        // `prob * acc` and `acc * prob` are the same bits
                        // (IEEE multiplication commutes), so this matches
                        // the legacy `prob * k` fold exactly.
                        *v *= st.prob;
                    }
                    acc
                })
                .collect()
        });
    }
}

/// Incremental evaluator over the [`MatrixLowered`] tables: maintains one
/// strided joint-profile offset per support state, so social cost is one
/// table lookup per state and interim deviation costs are strided reads
/// off the same offsets.
struct MatrixKernel<'a> {
    lowered: &'a MatrixLowered<'a>,
    /// Joint profile index per state under the current digits.
    offsets: Vec<usize>,
    digits: Vec<u32>,
    /// Scratch buffer of per-action interim costs, filled by one fused
    /// pass over a slot's states ([`MatrixKernel::interim_all`]).
    interim_buf: Vec<f64>,
    /// The slot that refuted the previous equilibrium check — checked
    /// first next time (pure evaluation-order heuristic; the result of
    /// the AND is order-independent).
    unstable_hint: usize,
}

impl MatrixKernel<'_> {
    /// Fills [`Self::interim_buf`] with the unnormalized interim cost of
    /// every deviation at `slot` in one fused pass over the slot's states
    /// — bit-identical per action to the legacy one-action-at-a-time
    /// `BayesianGame::interim_cost` (each accumulator starts at `0.0` and
    /// adds the same `prob · table[..]` products in the same state
    /// order), but reading each state's table row once, contiguously.
    fn interim_all(&mut self, slot: usize) {
        let lowered = self.lowered;
        let played = self.digits[slot] as usize;
        let (agent, _) = lowered.space.slot(slot);
        let actions = lowered.space.slot_size(slot) as usize;
        self.interim_buf.clear();
        self.interim_buf.resize(actions, 0.0);
        for &(s, stride) in &lowered.slot_states[slot] {
            let state = &lowered.states[s];
            let table = state.agent_tables[agent];
            let base = self.offsets[s] - played * stride;
            let prob = state.prob;
            for (a, acc) in self.interim_buf.iter_mut().enumerate() {
                *acc += prob * table[base + a * stride];
            }
        }
    }

    /// Bit-faithful `BayesianGame::slot_is_stable` for one slot: exact
    /// over every deviation. The legacy short-circuit over actions only
    /// skipped computation, never changed the decision, so the fused
    /// all-deviations pass returns the identical boolean.
    fn slot_is_stable(&mut self, slot: usize) -> bool {
        self.interim_all(slot);
        let played = self.interim_buf[self.digits[slot] as usize];
        self.interim_buf
            .iter()
            .all(|&dev| dev >= played || bi_util::approx_le(played, dev))
    }
}

impl EvalKernel for MatrixKernel<'_> {
    fn seed(&mut self, digits: &[u32]) {
        self.digits.copy_from_slice(digits);
        for (offset, state) in self.offsets.iter_mut().zip(&self.lowered.states) {
            *offset = state
                .offset_terms
                .iter()
                .map(|&(slot, stride)| digits[slot] as usize * stride)
                .sum();
        }
    }

    fn advance(&mut self, slot: usize, old: u32, new: u32) {
        self.digits[slot] = new;
        for &(s, stride) in &self.lowered.slot_states[slot] {
            self.offsets[s] = self.offsets[s] - old as usize * stride + new as usize * stride;
        }
    }

    fn social_cost(&mut self) -> f64 {
        // Same fold as the legacy `BayesianGame::social_cost`: one
        // `prob · K_t` term per state, in state order — read from the
        // premultiplied sweep tables when built, recomputed from the
        // per-agent tables otherwise (identical operands either way).
        if let Some(social) = self.lowered.social.get() {
            self.offsets
                .iter()
                .zip(social)
                .map(|(&offset, table)| table[offset])
                .sum()
        } else {
            self.offsets
                .iter()
                .zip(&self.lowered.states)
                .map(|(&offset, state)| {
                    let k: f64 = state.agent_tables.iter().map(|table| table[offset]).sum();
                    state.prob * k
                })
                .sum()
        }
    }

    fn is_equilibrium(&mut self) -> bool {
        let space = self.lowered.space;
        let mut hint = self.unstable_hint;
        let stable = crate::compiled::stable_with_hint(
            space.num_slots(),
            |slot| space.weight(slot),
            &mut hint,
            |slot| self.slot_is_stable(slot),
        );
        self.unstable_hint = hint;
        stable
    }

    fn slot_improvement(&mut self, slot: usize) -> SlotStep {
        // Replicates the default `BayesianModel::slot_improvement` +
        // `BayesianGame::best_response` pair: EPS tie-breaking to the
        // smallest action index, improvement only beyond the tolerance.
        self.interim_all(slot);
        let played = self.interim_buf[self.digits[slot] as usize];
        let mut best_a = 0usize;
        let mut best_c = f64::INFINITY;
        for (a, &c) in self.interim_buf.iter().enumerate() {
            if c < best_c - bi_util::EPS {
                best_c = c;
                best_a = a;
            }
        }
        if best_c < played - bi_util::EPS {
            SlotStep::Improve(best_a as u32)
        } else {
            SlotStep::Stable
        }
    }
}

/// Iterator over all pure strategy profiles of a [`BayesianGame`].
pub struct StrategyIter<'a> {
    game: &'a BayesianGame,
    slots: Vec<(usize, usize)>,
    inner: ProfileIter,
}

impl Iterator for StrategyIter<'_> {
    type Item = StrategyProfile;

    fn next(&mut self) -> Option<StrategyProfile> {
        let assignment = self.inner.next()?;
        let mut s: StrategyProfile = self
            .game
            .type_counts()
            .iter()
            .map(|&c| vec![0usize; c])
            .collect();
        for (&(i, tau), &a) in self.slots.iter().zip(&assignment) {
            s[i][tau] = a;
        }
        Some(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two agents; agent 1 has two types. In state 0 the agents want to
    /// match, in state 1 they want to differ; agent 0 cannot see which.
    fn coordination_game() -> BayesianGame {
        let matcher =
            MatrixFormGame::from_fn(2, &[2, 2], |_, a| if a[0] == a[1] { 0.0 } else { 2.0 });
        let mismatcher =
            MatrixFormGame::from_fn(2, &[2, 2], |_, a| if a[0] != a[1] { 0.0 } else { 2.0 });
        BayesianGame::new(
            vec![1, 2],
            vec![(vec![0, 0], 0.5, matcher), (vec![0, 1], 0.5, mismatcher)],
        )
        .unwrap()
    }

    #[test]
    fn construction_validates_prior() {
        let g = MatrixFormGame::from_fn(1, &[1], |_, _| 0.0);
        assert!(matches!(
            BayesianGame::new(vec![1], vec![(vec![0], 0.5, g.clone())]),
            Err(BayesianGameError::BadPrior(_))
        ));
        assert!(matches!(
            BayesianGame::new(
                vec![1],
                vec![(vec![0], 0.5, g.clone()), (vec![0], 0.5, g.clone())]
            ),
            Err(BayesianGameError::DuplicateState(1))
        ));
        assert!(matches!(
            BayesianGame::new(vec![1], vec![(vec![3], 1.0, g)]),
            Err(BayesianGameError::TypeOutOfRange { state: 0, agent: 0 })
        ));
    }

    #[test]
    fn marginals_aggregate_over_states() {
        let game = coordination_game();
        assert_eq!(game.marginal(0, 0), 1.0);
        assert_eq!(game.marginal(1, 0), 0.5);
        assert_eq!(game.marginal(1, 1), 0.5);
    }

    #[test]
    fn expected_costs_average_over_the_prior() {
        let game = coordination_game();
        // Agent 1 matches in her first type, differs in the second: both
        // states resolved perfectly.
        let s = vec![vec![0], vec![0, 1]];
        assert_eq!(game.social_cost(&s), 0.0);
        assert_eq!(game.expected_cost(0, &s), 0.0);
        // Agent 1 always plays 0: state 1 costs 2 per agent, prob 1/2.
        let s_bad = vec![vec![0], vec![0, 0]];
        assert_eq!(game.social_cost(&s_bad), 2.0);
    }

    #[test]
    fn the_informed_agent_separates_at_equilibrium() {
        let game = coordination_game();
        let s = vec![vec![0], vec![0, 1]];
        assert!(game.is_bayesian_equilibrium(&s));
        let s_bad = vec![vec![0], vec![0, 0]];
        assert!(!game.is_bayesian_equilibrium(&s_bad));
    }

    #[test]
    fn best_response_dynamics_reach_an_equilibrium() {
        let game = coordination_game();
        let start = vec![vec![0], vec![1, 1]];
        let eq = game.best_response_dynamics(start, 50).expect("converges");
        assert!(game.is_bayesian_equilibrium(&eq));
    }

    #[test]
    fn strategy_enumeration_counts() {
        let game = coordination_game();
        // Agent 0: 2 actions ^ 1 type; agent 1: 2 ^ 2 types → 8 profiles.
        assert_eq!(game.strategy_space_size().unwrap(), 8);
        assert_eq!(game.strategies().unwrap().count(), 8);
    }

    #[test]
    fn measures_satisfy_observation_2_2() {
        let game = coordination_game();
        let m = game.measures().unwrap();
        m.verify_chain().unwrap();
        // optP: agent 1 separates → 0. optC = 0 as well.
        assert_eq!(m.opt_p, 0.0);
        assert_eq!(m.opt_c, 0.0);
    }

    #[test]
    fn measure_error_when_no_pure_underlying_equilibrium() {
        // Matching pennies as the single state: no pure Nash.
        let mp = MatrixFormGame::from_fn(2, &[2, 2], |i, a| {
            let matched = a[0] == a[1];
            match (i, matched) {
                (0, true) | (1, false) => 0.0,
                _ => 1.0,
            }
        });
        let game = BayesianGame::new(vec![1, 1], vec![(vec![0, 0], 1.0, mp)]).unwrap();
        match game.measures() {
            Err(MeasureError::NoPureEquilibrium { state: 0 }) => {}
            Err(MeasureError::NoBayesianEquilibrium) => {}
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn interim_cost_restricts_to_the_observed_type() {
        let game = coordination_game();
        let s = vec![vec![0], vec![0, 0]];
        // Agent 1 at type 0 (matcher state): playing 0 matches agent 0's 0.
        assert_eq!(game.interim_cost(1, 0, 0, &s), 0.0);
        assert_eq!(game.interim_cost(1, 0, 1, &s), 0.5 * 2.0);
        // At type 1 (mismatcher state): playing 1 is free.
        assert_eq!(game.interim_cost(1, 1, 1, &s), 0.0);
    }

    #[test]
    fn zero_probability_types_are_pinned() {
        let g = MatrixFormGame::from_fn(1, &[3], |_, a| a[0] as f64);
        // Type space of size 2 but only type 0 in the support.
        let game = BayesianGame::new(vec![2], vec![(vec![0], 1.0, g)]).unwrap();
        assert_eq!(game.strategy_space_size().unwrap(), 3);
        for s in game.strategies().unwrap() {
            assert_eq!(s[0][1], 0, "unused type must stay pinned");
        }
    }
}
