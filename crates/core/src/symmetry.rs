//! Agent-symmetry detection and canonical-orbit enumeration for the
//! exhaustive sweep.
//!
//! The paper's hard instances (`G_worst`, affine-plane games) are built
//! from blocks of *interchangeable* agents: agents with identical type
//! structure whose transposition leaves every cost of the game unchanged
//! — not just up to reordering, but **bitwise** (the permuted profile's
//! social cost is computed from the same floating-point terms in the same
//! order). Under such a symmetry group the six measures are constant on
//! every orbit of strategy profiles, so an exhaustive sweep only needs to
//! visit one canonical representative per orbit: extrema over canonical
//! profiles equal extrema over the full space, exactly.
//!
//! * [`Symmetry::detect`] finds the interchangeability classes of a model
//!   via [`BayesianModel::agents_interchangeable`] plus structural checks
//!   on the compiled candidate space;
//! * [`Symmetry::orbit_count`] counts canonical profiles in closed form
//!   (a product of multiset coefficients), so budgets are gated *before*
//!   sweeping, exactly as in the unreduced path;
//! * [`Symmetry::decode_canonical`] unranks a canonical profile by index
//!   and [`Symmetry::next_canonical`] steps to the lexicographic
//!   successor in place — together they give the work-stealing sweep a
//!   block-decodable enumeration domain identical in shape to the flat
//!   odometer;
//! * [`Symmetry::canonicalize`] / [`Symmetry::is_canonical`] /
//!   [`Symmetry::orbit_size`] expose the underlying group action for
//!   property tests and diagnostics.
//!
//! The canonical form: each agent's strategy (the digits of its
//! contiguous slot block) is read as one mixed-radix tuple; a profile is
//! canonical iff within every class the member tuples are non-decreasing
//! in agent order. This is the standard multiset normal form, and every
//! orbit contains exactly one such profile.
//!
//! # Exactness contract
//!
//! Everything here rests on the [`BayesianModel::agents_interchangeable`]
//! contract: swapping the two agents' strategies must leave
//! `social_cost` and every interim cost **bit-for-bit** unchanged.
//! Representations therefore only declare symmetry they can verify on
//! their own data (bitwise-equal cost tables under the coordinate swap
//! for matrix games, identical type lists and per-state type incidence
//! for network cost-sharing games). [`Symmetry::detect`] additionally
//! verifies that the compiled candidate space treats the agents
//! identically (same per-slot candidate lists and weights), so a model
//! override can never silently desynchronize from the sweep domain.

use crate::compiled::CompiledSpace;
use crate::model::BayesianModel;
use crate::solve::SolveError;

/// Whether [`crate::solve::Solver`] looks for agent symmetry before an
/// exhaustive sweep.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SymmetryMode {
    /// Never reduce: sweep the full strategy space (the historical
    /// behavior, and the default).
    #[default]
    Off,
    /// Detect interchangeable agents and sweep only canonical orbit
    /// representatives when any non-trivial class exists. Results are
    /// bit-for-bit identical to [`SymmetryMode::Off`]; only
    /// `profiles_evaluated` and the orbit statistics differ.
    Auto,
}

/// The detected agent-interchangeability structure of one compiled model:
/// equivalence classes of agents whose strategies may be permuted freely,
/// plus the slot layout needed to enumerate canonical representatives.
///
/// Built by [`Symmetry::detect`]; consumed by the exhaustive sweep in
/// [`crate::solve`].
#[derive(Clone, Debug)]
pub struct Symmetry {
    /// `(first_slot, slot_count)` per agent, agent-major (the compiled
    /// slot order).
    agent_slots: Vec<(usize, usize)>,
    /// Candidate count per slot (copied out of the compiled space so the
    /// enumeration needs no `M` parameter).
    slot_sizes: Vec<u32>,
    /// Interchangeability classes: ascending agent indices, classes
    /// ordered by first member, singletons included.
    classes: Vec<Vec<usize>>,
    /// Class index per agent.
    class_of: Vec<usize>,
    /// The largest same-class agent with a smaller index, per agent.
    class_pred: Vec<Option<usize>>,
    /// Per-agent strategy-tuple count (product of the agent's slot
    /// sizes); `u128` because a single agent may carry most of the space.
    tuple_counts: Vec<u128>,
}

impl Symmetry {
    /// Detects the interchangeability classes of `model` over its
    /// compiled space.
    ///
    /// Two agents land in one class iff the model declares them
    /// interchangeable with the class representative
    /// ([`BayesianModel::agents_interchangeable`]) **and** the compiled
    /// space agrees structurally: same number of slots, and per-slot
    /// bitwise-equal weights, equal sizes, and equal candidate lists.
    /// Grouping via the representative is sound because exact
    /// interchangeability is transitive (transpositions compose).
    ///
    /// # Panics
    ///
    /// Panics if `space` was not compiled from `model` (slot counts
    /// disagree).
    #[must_use]
    pub fn detect<M: BayesianModel>(model: &M, space: &CompiledSpace<M>) -> Symmetry {
        let num_agents = space.num_agents();
        let mut agent_slots = vec![(0usize, 0usize); num_agents];
        for j in 0..space.num_slots() {
            let (i, tau) = space.slot(j);
            if tau == 0 {
                agent_slots[i].0 = j;
            }
            agent_slots[i].1 += 1;
        }
        let slot_sizes: Vec<u32> = (0..space.num_slots()).map(|j| space.slot_size(j)).collect();
        let mut classes: Vec<Vec<usize>> = Vec::new();
        let mut class_of = vec![0usize; num_agents];
        let mut class_pred = vec![None; num_agents];
        for i in 0..num_agents {
            let found = classes.iter().position(|class| {
                let rep = class[0];
                structurally_equal(space, agent_slots[rep], agent_slots[i])
                    && model.agents_interchangeable(rep, i)
            });
            match found {
                Some(ci) => {
                    class_pred[i] = classes[ci].last().copied();
                    class_of[i] = ci;
                    classes[ci].push(i);
                }
                None => {
                    class_of[i] = classes.len();
                    classes.push(vec![i]);
                }
            }
        }
        let tuple_counts = agent_slots
            .iter()
            .map(|&(start, count)| {
                slot_sizes[start..start + count]
                    .iter()
                    .fold(1u128, |acc, &s| acc.saturating_mul(u128::from(s)))
            })
            .collect();
        Symmetry {
            agent_slots,
            slot_sizes,
            classes,
            class_of,
            class_pred,
            tuple_counts,
        }
    }

    /// Whether every class is a singleton — no reduction possible.
    #[must_use]
    pub fn is_trivial(&self) -> bool {
        self.classes.iter().all(|c| c.len() == 1)
    }

    /// The interchangeability classes: ascending agent indices, ordered
    /// by first member, singletons included.
    #[must_use]
    pub fn classes(&self) -> &[Vec<usize>] {
        &self.classes
    }

    /// Number of canonical profiles: the product over classes of the
    /// multiset coefficient `C(T + c − 1, c)` (`T` strategy tuples per
    /// member, `c` members).
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::SpaceTooLarge`] when the count overflows
    /// `u128` (the unreduced space then overflows too).
    pub fn orbit_count(&self) -> Result<u128, SolveError> {
        let mut total = 1u128;
        for class in &self.classes {
            let t = self.tuple_counts[class[0]];
            let ways = multichoose(t, class.len()).ok_or(SolveError::SpaceTooLarge)?;
            total = total.checked_mul(ways).ok_or(SolveError::SpaceTooLarge)?;
        }
        Ok(total)
    }

    /// The symmetry-group order `Π |class|!`, saturating at `u128::MAX`
    /// (observability only — orbit enumeration never multiplies by it).
    #[must_use]
    pub fn group_order_saturating(&self) -> u128 {
        let mut order = 1u128;
        for class in &self.classes {
            for m in 2..=class.len() as u128 {
                order = order.saturating_mul(m);
            }
        }
        order
    }

    /// Number of distinct profiles in the orbit of `digits`: the product
    /// over classes of `c! / Π mult!` where `mult` are the multiplicities
    /// of equal member tuples.
    ///
    /// # Panics
    ///
    /// Panics on `u128` overflow (only reachable with hundreds of
    /// interchangeable agents, far beyond sweepable spaces) or if
    /// `digits` has the wrong length.
    #[must_use]
    pub fn orbit_size(&self, digits: &[u32]) -> u128 {
        assert_eq!(digits.len(), self.slot_sizes.len(), "digit buffer length");
        let mut size = 1u128;
        for class in &self.classes {
            let mut perms = 1u128;
            for m in 2..=class.len() as u128 {
                perms = perms.checked_mul(m).expect("orbit size overflows u128");
            }
            // Divide out multiplicities of identical member tuples.
            for (pos, &a) in class.iter().enumerate() {
                let mut mult = 1u128;
                for &b in &class[..pos] {
                    if self.cmp_agent_tuples(digits, a, b) == std::cmp::Ordering::Equal {
                        mult += 1;
                    }
                }
                perms /= mult;
            }
            size = size.checked_mul(perms).expect("orbit size overflows u128");
        }
        size
    }

    /// Whether `digits` is the canonical representative of its orbit:
    /// within every class, member tuples are non-decreasing in agent
    /// order.
    ///
    /// # Panics
    ///
    /// Panics if `digits` has the wrong length.
    #[must_use]
    pub fn is_canonical(&self, digits: &[u32]) -> bool {
        assert_eq!(digits.len(), self.slot_sizes.len(), "digit buffer length");
        self.classes.iter().all(|class| {
            class.windows(2).all(|pair| {
                self.cmp_agent_tuples(digits, pair[0], pair[1]) != std::cmp::Ordering::Greater
            })
        })
    }

    /// Rewrites `digits` to the canonical representative of its orbit
    /// (sorts each class's member tuples into non-decreasing agent
    /// order).
    ///
    /// # Panics
    ///
    /// Panics if `digits` has the wrong length.
    pub fn canonicalize(&self, digits: &mut [u32]) {
        assert_eq!(digits.len(), self.slot_sizes.len(), "digit buffer length");
        for class in &self.classes {
            if class.len() < 2 {
                continue;
            }
            let mut tuples: Vec<Vec<u32>> = class
                .iter()
                .map(|&a| {
                    let (start, count) = self.agent_slots[a];
                    digits[start..start + count].to_vec()
                })
                .collect();
            tuples.sort_unstable();
            for (&a, tuple) in class.iter().zip(tuples) {
                let (start, count) = self.agent_slots[a];
                digits[start..start + count].copy_from_slice(&tuple);
            }
        }
    }

    /// Writes the `rank`-th canonical profile (lexicographic over agent
    /// tuples, agents in index order) into `digits`.
    ///
    /// # Panics
    ///
    /// Panics if `rank >= orbit_count()`, if `digits` has the wrong
    /// length, or on transient `u128` overflow in completion counting
    /// (impossible once [`Symmetry::orbit_count`] succeeded for any
    /// realistically budgeted space).
    pub fn decode_canonical(&self, rank: u128, digits: &mut [u32]) {
        assert_eq!(digits.len(), self.slot_sizes.len(), "digit buffer length");
        let mut rank = rank;
        // Per-class lower bound (the last decided member's tuple) and
        // number of still-undecided members.
        let mut class_lb = vec![0u128; self.classes.len()];
        let mut class_rem: Vec<usize> = self.classes.iter().map(Vec::len).collect();
        for a in 0..self.agent_slots.len() {
            let ci = self.class_of[a];
            class_rem[ci] -= 1;
            let t = self.tuple_counts[a];
            let mut v = class_lb[ci];
            loop {
                debug_assert!(v < t, "canonical rank out of range");
                // Completions of the remaining agents with this one at `v`.
                let mut count = 1u128;
                for (cj, class) in self.classes.iter().enumerate() {
                    let lb = if cj == ci { v } else { class_lb[cj] };
                    let tj = self.tuple_counts[class[0]];
                    let ways = multichoose(tj - lb, class_rem[cj])
                        .expect("completion count overflows u128");
                    count = count
                        .checked_mul(ways)
                        .expect("completion count overflows u128");
                }
                if rank < count {
                    break;
                }
                rank -= count;
                v += 1;
            }
            class_lb[ci] = v;
            self.write_agent_tuple(digits, a, v);
        }
        debug_assert_eq!(rank, 0, "rank fully consumed");
    }

    /// Advances `digits` to the lexicographically next canonical profile
    /// in place, reporting every changed slot as `(slot, old, new)` so an
    /// incremental [`crate::compiled::EvalKernel`] can follow along.
    /// Returns `false` (leaving `digits` unspecified) when `digits` was
    /// the last canonical profile.
    ///
    /// # Panics
    ///
    /// Panics if `digits` has the wrong length.
    pub fn next_canonical(
        &self,
        digits: &mut [u32],
        mut on_change: impl FnMut(usize, u32, u32),
    ) -> bool {
        assert_eq!(digits.len(), self.slot_sizes.len(), "digit buffer length");
        // Rightmost agent whose tuple can still grow; increments never
        // violate the (lower-bound-only) class constraints.
        let mut a = self.agent_slots.len();
        loop {
            if a == 0 {
                return false;
            }
            a -= 1;
            if self.increment_agent(digits, a, &mut on_change) {
                break;
            }
        }
        // Minimal completion of every later agent: its class
        // predecessor's (already final) tuple, or all zeros.
        for b in a + 1..self.agent_slots.len() {
            match self.class_pred[b] {
                Some(p) => self.copy_agent_tuple(digits, p, b, &mut on_change),
                None => self.zero_agent(digits, b, &mut on_change),
            }
        }
        true
    }

    /// Compares the strategy tuples of agents `a` and `b` (which must be
    /// structurally equal) lexicographically over their slot blocks.
    fn cmp_agent_tuples(&self, digits: &[u32], a: usize, b: usize) -> std::cmp::Ordering {
        let (sa, count) = self.agent_slots[a];
        let (sb, _) = self.agent_slots[b];
        digits[sa..sa + count].cmp(&digits[sb..sb + count])
    }

    /// Mixed-radix increment of agent `a`'s tuple (last slot fastest).
    /// On overflow the tuple wraps to all zeros and `false` is returned;
    /// every digit change is reported either way.
    fn increment_agent(
        &self,
        digits: &mut [u32],
        a: usize,
        on_change: &mut impl FnMut(usize, u32, u32),
    ) -> bool {
        let (start, count) = self.agent_slots[a];
        for j in (start..start + count).rev() {
            let old = digits[j];
            if old + 1 < self.slot_sizes[j] {
                digits[j] = old + 1;
                on_change(j, old, old + 1);
                return true;
            }
            digits[j] = 0;
            if old != 0 {
                on_change(j, old, 0);
            }
        }
        false
    }

    /// Overwrites agent `to`'s tuple with agent `from`'s, reporting the
    /// differing digits.
    fn copy_agent_tuple(
        &self,
        digits: &mut [u32],
        from: usize,
        to: usize,
        on_change: &mut impl FnMut(usize, u32, u32),
    ) {
        let (sf, count) = self.agent_slots[from];
        let (st, _) = self.agent_slots[to];
        for s in 0..count {
            let new = digits[sf + s];
            let old = digits[st + s];
            if old != new {
                digits[st + s] = new;
                on_change(st + s, old, new);
            }
        }
    }

    /// Zeros agent `a`'s tuple, reporting the differing digits.
    fn zero_agent(
        &self,
        digits: &mut [u32],
        a: usize,
        on_change: &mut impl FnMut(usize, u32, u32),
    ) {
        let (start, count) = self.agent_slots[a];
        for (j, d) in digits.iter_mut().enumerate().skip(start).take(count) {
            let old = *d;
            if old != 0 {
                *d = 0;
                on_change(j, old, 0);
            }
        }
    }

    /// Writes scalar tuple value `v` into agent `a`'s digit block
    /// (mixed-radix, last slot fastest).
    fn write_agent_tuple(&self, digits: &mut [u32], a: usize, mut v: u128) {
        let (start, count) = self.agent_slots[a];
        for j in (start..start + count).rev() {
            let base = u128::from(self.slot_sizes[j]);
            digits[j] = (v % base) as u32;
            v /= base;
        }
        debug_assert_eq!(v, 0, "tuple value within range");
    }
}

/// `space`-level structural equality of two agents' slot blocks: same
/// slot count and per-slot bitwise-equal weights, equal sizes, and equal
/// candidate lists.
fn structurally_equal<M: BayesianModel>(
    space: &CompiledSpace<M>,
    a: (usize, usize),
    b: (usize, usize),
) -> bool {
    let ((sa, ca), (sb, cb)) = (a, b);
    if ca != cb {
        return false;
    }
    (0..ca).all(|s| {
        space.slot_size(sa + s) == space.slot_size(sb + s)
            && space.weight(sa + s).to_bits() == space.weight(sb + s).to_bits()
            && space.slot_actions(sa + s) == space.slot_actions(sb + s)
    })
}

/// The multiset coefficient `C(t + r − 1, r)`: non-decreasing
/// `r`-sequences over `t` values. `None` on `u128` overflow. Exact: each
/// partial product is itself a binomial, so the running division never
/// truncates.
fn multichoose(t: u128, r: usize) -> Option<u128> {
    let mut result = 1u128;
    for i in 1..=r as u128 {
        result = result.checked_mul(t.checked_sub(1)?.checked_add(i)?)? / i;
    }
    Some(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bayesian::BayesianGame;
    use crate::game::MatrixFormGame;
    use crate::random_games::random_bayesian_potential_game;

    /// A 3-agent game whose agents 0 and 1 are interchangeable (identical
    /// marginals and a social cost symmetric in their actions) while
    /// agent 2 is not.
    fn two_plus_one_game() -> BayesianGame {
        let symmetric = MatrixFormGame::from_fn(3, &[2, 2, 3], |_, a| {
            (a[0] + a[1]) as f64 + 10.0 * a[2] as f64
        });
        BayesianGame::new(vec![1, 1, 1], vec![(vec![0, 0, 0], 1.0, symmetric)]).unwrap()
    }

    fn symmetry_of(game: &BayesianGame) -> (Symmetry, CompiledSpace<BayesianGame>) {
        let space = CompiledSpace::compile(game).unwrap();
        let sym = Symmetry::detect(game, &space);
        (sym, space)
    }

    #[test]
    fn detects_interchangeable_pair() {
        let game = two_plus_one_game();
        let (sym, _) = symmetry_of(&game);
        assert!(!sym.is_trivial());
        assert_eq!(sym.classes(), &[vec![0, 1], vec![2]]);
        assert_eq!(sym.group_order_saturating(), 2);
        // 2 interchangeable binary agents: C(2+2-1, 2) = 3 canonical
        // pairs, times 3 strategies of the free agent.
        assert_eq!(sym.orbit_count().unwrap(), 9);
    }

    #[test]
    fn asymmetric_games_are_trivial() {
        let skew = MatrixFormGame::from_fn(2, &[2, 2], |_, a| (2 * a[0] + a[1]) as f64);
        let game = BayesianGame::new(vec![1, 1], vec![(vec![0, 0], 1.0, skew)]).unwrap();
        let (sym, _) = symmetry_of(&game);
        assert!(sym.is_trivial());
        assert_eq!(sym.orbit_count().unwrap(), 4);
        assert_eq!(sym.group_order_saturating(), 1);
    }

    #[test]
    fn canonical_form_is_idempotent_and_canonical() {
        let game = two_plus_one_game();
        let (sym, space) = symmetry_of(&game);
        let size = space.space_size().unwrap();
        let mut digits = vec![0u32; space.num_slots()];
        for idx in 0..size {
            space.decode(idx, &mut digits);
            let mut canon = digits.clone();
            sym.canonicalize(&mut canon);
            assert!(sym.is_canonical(&canon), "canonicalize yields canonical");
            let mut twice = canon.clone();
            sym.canonicalize(&mut twice);
            assert_eq!(twice, canon, "canonicalize is idempotent");
            // A profile is its own canonical form iff it is canonical.
            assert_eq!(canon == digits, sym.is_canonical(&digits));
        }
    }

    #[test]
    fn orbit_sizes_divide_group_order_and_sum_to_space() {
        for (type_counts, action_counts) in
            [(vec![1, 1, 1], vec![2, 2, 3]), (vec![1, 1], vec![3, 3])]
        {
            let g = MatrixFormGame::from_fn(type_counts.len(), &action_counts, |_, a| {
                a.iter().map(|&x| x as f64).sum()
            });
            let game = BayesianGame::new(
                type_counts.clone(),
                vec![(vec![0; type_counts.len()], 1.0, g)],
            )
            .unwrap();
            let (sym, space) = symmetry_of(&game);
            let order = sym.group_order_saturating();
            let mut digits = vec![0u32; space.num_slots()];
            let mut covered = 0u128;
            let mut canonical_count = 0u128;
            for idx in 0..space.space_size().unwrap() {
                space.decode(idx, &mut digits);
                let orbit = sym.orbit_size(&digits);
                assert!(orbit >= 1 && order % orbit == 0, "orbit size divides |G|");
                if sym.is_canonical(&digits) {
                    covered += orbit;
                    canonical_count += 1;
                }
            }
            assert_eq!(covered, space.space_size().unwrap(), "orbits partition");
            assert_eq!(canonical_count, sym.orbit_count().unwrap());
        }
    }

    #[test]
    fn stepping_and_unranking_agree() {
        let game = two_plus_one_game();
        let (sym, space) = symmetry_of(&game);
        let orbits = sym.orbit_count().unwrap();
        // Walk with next_canonical from rank 0; check each position
        // against decode_canonical and canonicity.
        let mut digits = vec![0u32; space.num_slots()];
        sym.decode_canonical(0, &mut digits);
        let mut expected = vec![0u32; space.num_slots()];
        for rank in 0..orbits {
            sym.decode_canonical(rank, &mut expected);
            assert_eq!(digits, expected, "rank {rank}");
            assert!(sym.is_canonical(&digits));
            let more = sym.next_canonical(&mut digits, |_, _, _| {});
            assert_eq!(more, rank + 1 < orbits, "exhausts exactly at the end");
        }
    }

    #[test]
    fn change_reports_track_the_digit_buffer() {
        let game = two_plus_one_game();
        let (sym, space) = symmetry_of(&game);
        let mut digits = vec![0u32; space.num_slots()];
        sym.decode_canonical(0, &mut digits);
        // Mirror the buffer exclusively through the change callback: it
        // must stay identical to the stepped buffer at every position.
        let mut mirror = digits.clone();
        loop {
            let mut changes: Vec<(usize, u32, u32)> = Vec::new();
            if !sym.next_canonical(&mut digits, |j, old, new| changes.push((j, old, new))) {
                break;
            }
            for (j, old, new) in changes {
                assert_eq!(mirror[j], old, "stale `old` digit reported");
                assert_ne!(old, new, "no-op change reported");
                mirror[j] = new;
            }
            assert_eq!(mirror, digits);
        }
    }

    #[test]
    fn random_potential_games_detect_no_spurious_symmetry() {
        // Random potential games have independently drawn cost tables:
        // interchangeability would require exact bitwise coincidences.
        for seed in 0..8 {
            let (game, _) = random_bayesian_potential_game(&[2, 2], &[2, 2], 2, seed);
            let space = CompiledSpace::compile(&game).unwrap();
            let sym = Symmetry::detect(&game, &space);
            assert!(sym.is_trivial(), "seed {seed}");
        }
    }

    #[test]
    fn multichoose_is_exact() {
        assert_eq!(multichoose(1, 0), Some(1));
        assert_eq!(multichoose(2, 2), Some(3));
        assert_eq!(multichoose(3, 3), Some(10));
        assert_eq!(multichoose(10, 4), Some(715));
        // C(2^k + k, k+1)-style big values stay exact.
        assert_eq!(
            multichoose(1 << 20, 2),
            Some((1u128 << 20) * ((1 << 20) + 1) / 2)
        );
        assert_eq!(multichoose(u128::MAX, 2), None);
    }
}
