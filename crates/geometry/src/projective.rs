//! Finite projective planes `PG(2, q)`, built by completing an affine
//! plane with its points at infinity.
//!
//! The paper only needs affine planes, but the projective completion is a
//! strong consistency check on the incidence machinery: it must satisfy
//! the *exact* intersection axiom (any two lines meet in exactly one
//! point), which fails loudly if the affine construction is wrong.

use crate::affine::{AffinePlane, AffinePlaneError};

/// The projective plane of order `q`: `q² + q + 1` points and as many
/// lines, every line carrying `q + 1` points.
///
/// Point indices `0..q²` are the affine points; `q² + m` (for `m` in
/// `0..q`) is the infinity point of slope-`m` lines; `q² + q` is the
/// infinity point of vertical lines. Line indices `0..q²+q` are the
/// extended affine lines; the last line is the line at infinity.
///
/// # Examples
///
/// ```
/// use bi_geometry::projective::ProjectivePlane;
///
/// let plane = ProjectivePlane::new(2).unwrap(); // the Fano plane
/// assert_eq!(plane.point_count(), 7);
/// assert_eq!(plane.line_count(), 7);
/// plane.verify_axioms().unwrap();
/// ```
#[derive(Clone, Debug)]
pub struct ProjectivePlane {
    q: usize,
    lines: Vec<Vec<usize>>,
    point_lines: Vec<Vec<usize>>,
}

impl ProjectivePlane {
    /// Constructs `PG(2, q)`.
    ///
    /// # Errors
    ///
    /// Returns an error when `q` is not a supported prime power.
    pub fn new(q: u64) -> Result<Self, AffinePlaneError> {
        let affine = AffinePlane::new(q)?;
        let q = affine.order();
        let n_affine_points = q * q;
        let mut lines: Vec<Vec<usize>> = Vec::with_capacity(q * q + q + 1);
        // Extended affine lines: slope m·q + b gets infinity point q²+m,
        // vertical q²+c gets infinity point q²+q.
        for lid in 0..affine.line_count() {
            let mut pts = affine.points_on_line(lid).to_vec();
            let inf = if lid < q * q {
                n_affine_points + lid / q
            } else {
                n_affine_points + q
            };
            pts.push(inf);
            lines.push(pts);
        }
        // The line at infinity.
        lines.push((0..=q).map(|m| n_affine_points + m).collect());
        let point_count = n_affine_points + q + 1;
        let mut point_lines = vec![Vec::new(); point_count];
        for (lid, pts) in lines.iter().enumerate() {
            for &p in pts {
                point_lines[p].push(lid);
            }
        }
        Ok(ProjectivePlane {
            q,
            lines,
            point_lines,
        })
    }

    /// Plane order `q`.
    #[must_use]
    pub fn order(&self) -> usize {
        self.q
    }

    /// Number of points (`q² + q + 1`).
    #[must_use]
    pub fn point_count(&self) -> usize {
        self.point_lines.len()
    }

    /// Number of lines (`q² + q + 1`).
    #[must_use]
    pub fn line_count(&self) -> usize {
        self.lines.len()
    }

    /// The points on a line (always `q + 1`).
    ///
    /// # Panics
    ///
    /// Panics if `line` is out of range.
    #[must_use]
    pub fn points_on_line(&self, line: usize) -> &[usize] {
        &self.lines[line]
    }

    /// Whether `point` lies on `line`.
    #[must_use]
    pub fn incident(&self, point: usize, line: usize) -> bool {
        self.lines[line].contains(&point)
    }

    /// Verifies the projective-plane axioms: uniform line size `q + 1`,
    /// uniform point degree `q + 1`, two distinct points on exactly one
    /// line, two distinct lines meeting in exactly one point.
    ///
    /// # Errors
    ///
    /// Returns [`AffinePlaneError::AxiomViolation`] describing the first
    /// failure.
    pub fn verify_axioms(&self) -> Result<(), AffinePlaneError> {
        let q = self.q;
        for (lid, pts) in self.lines.iter().enumerate() {
            if pts.len() != q + 1 {
                return Err(AffinePlaneError::AxiomViolation(format!(
                    "projective line {lid} has {} points, expected {}",
                    pts.len(),
                    q + 1
                )));
            }
        }
        for (pid, ls) in self.point_lines.iter().enumerate() {
            if ls.len() != q + 1 {
                return Err(AffinePlaneError::AxiomViolation(format!(
                    "projective point {pid} lies on {} lines, expected {}",
                    ls.len(),
                    q + 1
                )));
            }
        }
        for l1 in 0..self.line_count() {
            for l2 in (l1 + 1)..self.line_count() {
                let common = self.lines[l1]
                    .iter()
                    .filter(|&&p| self.incident(p, l2))
                    .count();
                if common != 1 {
                    return Err(AffinePlaneError::AxiomViolation(format!(
                        "projective lines {l1},{l2} share {common} points, expected exactly 1"
                    )));
                }
            }
        }
        for p1 in 0..self.point_count() {
            for p2 in (p1 + 1)..self.point_count() {
                let common = self.point_lines[p1]
                    .iter()
                    .filter(|&&l| self.incident(p2, l))
                    .count();
                if common != 1 {
                    return Err(AffinePlaneError::AxiomViolation(format!(
                        "projective points {p1},{p2} lie on {common} common lines, expected 1"
                    )));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fano_plane_has_seven_points_and_lines() {
        let plane = ProjectivePlane::new(2).unwrap();
        assert_eq!(plane.point_count(), 7);
        assert_eq!(plane.line_count(), 7);
        plane.verify_axioms().unwrap();
    }

    #[test]
    fn axioms_hold_for_small_orders() {
        for q in [2u64, 3, 4, 5] {
            ProjectivePlane::new(q)
                .unwrap()
                .verify_axioms()
                .unwrap_or_else(|e| panic!("q={q}: {e}"));
        }
    }

    #[test]
    fn counts_match_theory() {
        let plane = ProjectivePlane::new(3).unwrap();
        assert_eq!(plane.order(), 3);
        assert_eq!(plane.point_count(), 13);
        assert_eq!(plane.line_count(), 13);
        assert!(plane.points_on_line(0).len() == 4);
    }

    #[test]
    fn rejects_non_prime_powers() {
        assert!(ProjectivePlane::new(10).is_err());
    }
}
