//! Finite fields and finite geometries.
//!
//! The `Ω(k)` lower bound of Lemma 3.2 in *Bayesian ignorance* is built on a
//! **finite affine plane** of prime-power order `m`: `m²` points, `m² + m`
//! lines, every line carrying `m` points, every point on `m + 1` lines, two
//! points determining a unique line, and two lines meeting in at most one
//! point. This crate constructs those planes from scratch:
//!
//! * [`prime`] — primality testing and prime-power factoring;
//! * [`gf::PrimeField`] — arithmetic in `GF(p)`;
//! * [`poly::Poly`] — polynomial arithmetic over `GF(p)` with Rabin
//!   irreducibility testing;
//! * [`field::FiniteField`] — table-based `GF(p^e)` built from a found
//!   irreducible polynomial;
//! * [`affine::AffinePlane`] — the affine plane `AG(2, q)` with full axiom
//!   verification;
//! * [`projective::ProjectivePlane`] — `PG(2, q)`, used as an extra
//!   consistency check of the incidence machinery.
//!
//! # Examples
//!
//! ```
//! use bi_geometry::affine::AffinePlane;
//!
//! let plane = AffinePlane::new(4).expect("4 = 2² is a prime power");
//! assert_eq!(plane.point_count(), 16);
//! assert_eq!(plane.line_count(), 20);
//! plane.verify_axioms().expect("axioms hold");
//! ```

pub mod affine;
pub mod field;
pub mod gf;
pub mod poly;
pub mod prime;
pub mod projective;

pub use affine::AffinePlane;
pub use field::FiniteField;
pub use gf::PrimeField;
