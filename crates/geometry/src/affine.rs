//! Finite affine planes `AG(2, q)`.
//!
//! These planes are the combinatorial engine of Lemma 3.2: the Bayesian NCS
//! game built on `AG(2, m)` has `optP = Θ(m)` while every underlying game
//! has a unique equilibrium of cost 1, because two distinct points lie on
//! exactly one common line (so agents guessing the "wrong" line never
//! share edges).

use std::fmt;

use crate::field::{FieldError, FiniteField};

/// Identifies a point of an [`AffinePlane`] (a dense index in
/// `0..q²`; the point `(x, y)` has index `x·q + y`).
pub type PointId = usize;

/// Identifies a line of an [`AffinePlane`] (a dense index in `0..q²+q`;
/// slope lines `y = m·x + b` come first as `m·q + b`, then vertical lines
/// `x = c` as `q² + c`).
pub type LineId = usize;

/// Errors constructing or verifying an [`AffinePlane`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AffinePlaneError {
    /// The order is not a supported prime power.
    Field(FieldError),
    /// An incidence axiom failed (used by [`AffinePlane::verify_axioms`];
    /// cannot occur for planes built by [`AffinePlane::new`] unless there
    /// is a bug, which is exactly what the verifier exists to catch).
    AxiomViolation(String),
}

impl fmt::Display for AffinePlaneError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AffinePlaneError::Field(e) => write!(f, "invalid plane order: {e}"),
            AffinePlaneError::AxiomViolation(msg) => write!(f, "axiom violation: {msg}"),
        }
    }
}

impl std::error::Error for AffinePlaneError {}

impl From<FieldError> for AffinePlaneError {
    fn from(e: FieldError) -> Self {
        AffinePlaneError::Field(e)
    }
}

/// The affine plane of prime-power order `q`: `q²` points and `q² + q`
/// lines satisfying the four axioms listed in Lemma 3.2 of the paper.
///
/// # Examples
///
/// ```
/// use bi_geometry::AffinePlane;
///
/// let plane = AffinePlane::new(3).unwrap();
/// assert_eq!(plane.point_count(), 9);
/// assert_eq!(plane.line_count(), 12);
/// assert_eq!(plane.points_on_line(0).len(), 3);
/// assert_eq!(plane.lines_through(0).len(), 4);
/// ```
#[derive(Clone, Debug)]
pub struct AffinePlane {
    q: usize,
    lines: Vec<Vec<PointId>>,
    point_lines: Vec<Vec<LineId>>,
}

impl AffinePlane {
    /// Constructs `AG(2, q)` over `GF(q)`.
    ///
    /// # Errors
    ///
    /// Returns an error when `q` is not a prime power or exceeds the
    /// supported field size.
    pub fn new(q: u64) -> Result<Self, AffinePlaneError> {
        let field = FiniteField::new(q)?;
        let q = field.order();
        let mut lines: Vec<Vec<PointId>> = Vec::with_capacity(q * q + q);
        // Slope lines y = m·x + b.
        for m in 0..q {
            for b in 0..q {
                let pts = (0..q)
                    .map(|x| {
                        let y = field.add(field.mul(m, x), b);
                        x * q + y
                    })
                    .collect();
                lines.push(pts);
            }
        }
        // Vertical lines x = c.
        for c in 0..q {
            lines.push((0..q).map(|y| c * q + y).collect());
        }
        let mut point_lines: Vec<Vec<LineId>> = vec![Vec::new(); q * q];
        for (lid, pts) in lines.iter().enumerate() {
            for &p in pts {
                point_lines[p].push(lid);
            }
        }
        Ok(AffinePlane {
            q,
            lines,
            point_lines,
        })
    }

    /// Plane order `q`.
    #[must_use]
    pub fn order(&self) -> usize {
        self.q
    }

    /// Number of points (`q²`).
    #[must_use]
    pub fn point_count(&self) -> usize {
        self.q * self.q
    }

    /// Number of lines (`q² + q`).
    #[must_use]
    pub fn line_count(&self) -> usize {
        self.lines.len()
    }

    /// The points on a line (always `q` of them).
    ///
    /// # Panics
    ///
    /// Panics if `line` is out of range.
    #[must_use]
    pub fn points_on_line(&self, line: LineId) -> &[PointId] {
        &self.lines[line]
    }

    /// The lines through a point (always `q + 1` of them).
    ///
    /// # Panics
    ///
    /// Panics if `point` is out of range.
    #[must_use]
    pub fn lines_through(&self, point: PointId) -> &[LineId] {
        &self.point_lines[point]
    }

    /// Whether `point` lies on `line`.
    #[must_use]
    pub fn incident(&self, point: PointId, line: LineId) -> bool {
        self.lines[line].contains(&point)
    }

    /// The unique line through two distinct points, or `None` when
    /// `p1 == p2`.
    ///
    /// # Panics
    ///
    /// Panics if either point is out of range.
    #[must_use]
    pub fn line_through(&self, p1: PointId, p2: PointId) -> Option<LineId> {
        if p1 == p2 {
            return None;
        }
        self.point_lines[p1]
            .iter()
            .copied()
            .find(|&l| self.incident(p2, l))
    }

    /// Verifies the four affine-plane axioms quoted in Lemma 3.2:
    ///
    /// 1. each line contains exactly `q` points,
    /// 2. each point is contained in exactly `q + 1` lines,
    /// 3. any two distinct points lie on exactly one common line,
    /// 4. any two distinct lines meet in at most one point.
    ///
    /// # Errors
    ///
    /// Returns [`AffinePlaneError::AxiomViolation`] describing the first
    /// failed axiom.
    pub fn verify_axioms(&self) -> Result<(), AffinePlaneError> {
        let q = self.q;
        for (lid, pts) in self.lines.iter().enumerate() {
            if pts.len() != q {
                return Err(AffinePlaneError::AxiomViolation(format!(
                    "line {lid} has {} points, expected {q}",
                    pts.len()
                )));
            }
        }
        for (pid, ls) in self.point_lines.iter().enumerate() {
            if ls.len() != q + 1 {
                return Err(AffinePlaneError::AxiomViolation(format!(
                    "point {pid} lies on {} lines, expected {}",
                    ls.len(),
                    q + 1
                )));
            }
        }
        for p1 in 0..self.point_count() {
            for p2 in (p1 + 1)..self.point_count() {
                let common = self.point_lines[p1]
                    .iter()
                    .filter(|&&l| self.incident(p2, l))
                    .count();
                if common != 1 {
                    return Err(AffinePlaneError::AxiomViolation(format!(
                        "points {p1},{p2} lie on {common} common lines, expected 1"
                    )));
                }
            }
        }
        for l1 in 0..self.line_count() {
            for l2 in (l1 + 1)..self.line_count() {
                let common = self.lines[l1]
                    .iter()
                    .filter(|&&p| self.incident(p, l2))
                    .count();
                if common > 1 {
                    return Err(AffinePlaneError::AxiomViolation(format!(
                        "lines {l1},{l2} share {common} points, expected at most 1"
                    )));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_non_prime_power_orders() {
        assert!(matches!(
            AffinePlane::new(6),
            Err(AffinePlaneError::Field(FieldError::NotPrimePower(6)))
        ));
    }

    #[test]
    fn axioms_hold_for_small_prime_orders() {
        for q in [2u64, 3, 5, 7] {
            let plane = AffinePlane::new(q).unwrap();
            plane
                .verify_axioms()
                .unwrap_or_else(|e| panic!("q={q}: {e}"));
        }
    }

    #[test]
    fn axioms_hold_for_prime_power_orders() {
        for q in [4u64, 8, 9] {
            let plane = AffinePlane::new(q).unwrap();
            plane
                .verify_axioms()
                .unwrap_or_else(|e| panic!("q={q}: {e}"));
        }
    }

    #[test]
    fn line_through_is_unique_and_symmetric() {
        let plane = AffinePlane::new(5).unwrap();
        for p1 in 0..plane.point_count() {
            for p2 in 0..plane.point_count() {
                let l = plane.line_through(p1, p2);
                if p1 == p2 {
                    assert!(l.is_none());
                } else {
                    let l = l.expect("two points determine a line");
                    assert_eq!(plane.line_through(p2, p1), Some(l));
                    assert!(plane.incident(p1, l) && plane.incident(p2, l));
                }
            }
        }
    }

    #[test]
    fn counts_match_theory() {
        let plane = AffinePlane::new(4).unwrap();
        assert_eq!(plane.order(), 4);
        assert_eq!(plane.point_count(), 16);
        assert_eq!(plane.line_count(), 20);
        let total_incidences: usize = (0..plane.line_count())
            .map(|l| plane.points_on_line(l).len())
            .sum();
        assert_eq!(total_incidences, 20 * 4);
    }

    #[test]
    fn parallel_classes_partition_points() {
        // The q lines of a fixed slope partition the q² points.
        let plane = AffinePlane::new(3).unwrap();
        let q = plane.order();
        for m in 0..q {
            let mut seen = vec![false; plane.point_count()];
            for b in 0..q {
                for &p in plane.points_on_line(m * q + b) {
                    assert!(!seen[p], "slope {m} lines overlap");
                    seen[p] = true;
                }
            }
            assert!(seen.iter().all(|&s| s), "slope {m} lines miss a point");
        }
    }
}
