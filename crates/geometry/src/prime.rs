//! Primality and prime-power utilities.

/// Deterministic primality test by trial division (inputs in this workspace
/// are small: plane orders are at most a few hundred).
///
/// # Examples
///
/// ```
/// assert!(bi_geometry::prime::is_prime(97));
/// assert!(!bi_geometry::prime::is_prime(1));
/// assert!(!bi_geometry::prime::is_prime(91));
/// ```
#[must_use]
pub fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    if n % 2 == 0 {
        return n == 2;
    }
    let mut d = 3;
    while d * d <= n {
        if n % d == 0 {
            return false;
        }
        d += 2;
    }
    true
}

/// Factors `q` as `p^e` with `p` prime and `e ≥ 1`, or returns `None` when
/// `q` is not a prime power.
///
/// # Examples
///
/// ```
/// assert_eq!(bi_geometry::prime::prime_power(8), Some((2, 3)));
/// assert_eq!(bi_geometry::prime::prime_power(7), Some((7, 1)));
/// assert_eq!(bi_geometry::prime::prime_power(12), None);
/// ```
#[must_use]
pub fn prime_power(q: u64) -> Option<(u64, u32)> {
    if q < 2 {
        return None;
    }
    let mut n = q;
    let mut p = 0u64;
    // Find the smallest prime factor.
    let mut d = 2;
    while d * d <= n {
        if n % d == 0 {
            p = d;
            break;
        }
        d += 1;
    }
    if p == 0 {
        return Some((q, 1)); // q itself is prime
    }
    let mut e = 0;
    while n % p == 0 {
        n /= p;
        e += 1;
    }
    if n == 1 {
        Some((p, e))
    } else {
        None
    }
}

/// The prime powers in `[lo, hi]`, ascending — useful for sweeping affine
/// plane orders in the benches.
///
/// # Examples
///
/// ```
/// assert_eq!(bi_geometry::prime::prime_powers_in(2, 9), vec![2, 3, 4, 5, 7, 8, 9]);
/// ```
#[must_use]
pub fn prime_powers_in(lo: u64, hi: u64) -> Vec<u64> {
    (lo..=hi).filter(|&q| prime_power(q).is_some()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_primes() {
        let primes: Vec<u64> = (0..30).filter(|&n| is_prime(n)).collect();
        assert_eq!(primes, vec![2, 3, 5, 7, 11, 13, 17, 19, 23, 29]);
    }

    #[test]
    fn prime_power_decomposition() {
        assert_eq!(prime_power(2), Some((2, 1)));
        assert_eq!(prime_power(9), Some((3, 2)));
        assert_eq!(prime_power(27), Some((3, 3)));
        assert_eq!(prime_power(49), Some((7, 2)));
        assert_eq!(prime_power(1), None);
        assert_eq!(prime_power(0), None);
        assert_eq!(prime_power(6), None);
        assert_eq!(prime_power(100), None);
    }

    #[test]
    fn prime_powers_sweep() {
        assert_eq!(prime_powers_in(10, 20), vec![11, 13, 16, 17, 19]);
    }
}
