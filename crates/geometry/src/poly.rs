//! Polynomial arithmetic over `GF(p)`, with irreducibility testing.
//!
//! Used to construct extension fields `GF(p^e)`: the field is the quotient
//! `GF(p)[x] / (f)` for a monic irreducible `f` of degree `e`, which
//! [`find_irreducible`] locates by exhaustive search (orders in this
//! workspace are tiny).

use crate::gf::PrimeField;

/// A polynomial over `GF(p)`, stored as little-endian coefficients with no
/// trailing zeros (so the zero polynomial is the empty vector).
///
/// # Examples
///
/// ```
/// use bi_geometry::{poly::Poly, PrimeField};
///
/// let f = PrimeField::new(2).unwrap();
/// let a = Poly::new(vec![1, 1], f);     // 1 + x
/// let b = a.mul(&a);                    // 1 + 2x + x² = 1 + x² over GF(2)
/// assert_eq!(b.coeffs(), &[1, 0, 1]);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Poly {
    coeffs: Vec<u64>,
    field: PrimeField,
}

impl Poly {
    /// Creates a polynomial from little-endian coefficients, reducing each
    /// mod `p` and trimming trailing zeros.
    #[must_use]
    pub fn new(coeffs: Vec<u64>, field: PrimeField) -> Self {
        let mut coeffs: Vec<u64> = coeffs.into_iter().map(|c| c % field.order()).collect();
        while coeffs.last() == Some(&0) {
            coeffs.pop();
        }
        Poly { coeffs, field }
    }

    /// The zero polynomial.
    #[must_use]
    pub fn zero(field: PrimeField) -> Self {
        Poly {
            coeffs: Vec::new(),
            field,
        }
    }

    /// The monomial `x`.
    #[must_use]
    pub fn x(field: PrimeField) -> Self {
        Poly::new(vec![0, 1], field)
    }

    /// Little-endian coefficients (no trailing zeros).
    #[must_use]
    pub fn coeffs(&self) -> &[u64] {
        &self.coeffs
    }

    /// Degree; the zero polynomial has degree `None`.
    #[must_use]
    pub fn degree(&self) -> Option<usize> {
        self.coeffs.len().checked_sub(1)
    }

    /// Whether this is the zero polynomial.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// Polynomial addition.
    #[must_use]
    pub fn add(&self, other: &Poly) -> Poly {
        let n = self.coeffs.len().max(other.coeffs.len());
        let coeffs = (0..n)
            .map(|i| {
                self.field.add(
                    self.coeffs.get(i).copied().unwrap_or(0),
                    other.coeffs.get(i).copied().unwrap_or(0),
                )
            })
            .collect();
        Poly::new(coeffs, self.field)
    }

    /// Polynomial subtraction.
    #[must_use]
    pub fn sub(&self, other: &Poly) -> Poly {
        let n = self.coeffs.len().max(other.coeffs.len());
        let coeffs = (0..n)
            .map(|i| {
                self.field.sub(
                    self.coeffs.get(i).copied().unwrap_or(0),
                    other.coeffs.get(i).copied().unwrap_or(0),
                )
            })
            .collect();
        Poly::new(coeffs, self.field)
    }

    /// Polynomial multiplication (schoolbook; degrees here are tiny).
    #[must_use]
    pub fn mul(&self, other: &Poly) -> Poly {
        if self.is_zero() || other.is_zero() {
            return Poly::zero(self.field);
        }
        let mut coeffs = vec![0u64; self.coeffs.len() + other.coeffs.len() - 1];
        for (i, &a) in self.coeffs.iter().enumerate() {
            for (j, &b) in other.coeffs.iter().enumerate() {
                coeffs[i + j] = self.field.add(coeffs[i + j], self.field.mul(a, b));
            }
        }
        Poly::new(coeffs, self.field)
    }

    /// Remainder of division by `modulus`.
    ///
    /// # Panics
    ///
    /// Panics if `modulus` is zero.
    #[must_use]
    pub fn rem(&self, modulus: &Poly) -> Poly {
        assert!(!modulus.is_zero(), "division by the zero polynomial");
        let mut r = self.clone();
        let dm = modulus.degree().expect("nonzero");
        let lead_inv = self.field.inv(modulus.coeffs[dm]);
        while let Some(dr) = r.degree() {
            if dr < dm {
                break;
            }
            let factor = self.field.mul(r.coeffs[dr], lead_inv);
            let shift = dr - dm;
            let mut sub = vec![0u64; shift];
            sub.extend(modulus.coeffs.iter().map(|&c| self.field.mul(c, factor)));
            r = r.sub(&Poly::new(sub, self.field));
        }
        r
    }

    /// Greatest common divisor (monic).
    #[must_use]
    pub fn gcd(&self, other: &Poly) -> Poly {
        let mut a = self.clone();
        let mut b = other.clone();
        while !b.is_zero() {
            let r = a.rem(&b);
            a = b;
            b = r;
        }
        a.monic()
    }

    /// Scales so the leading coefficient is 1 (zero stays zero).
    #[must_use]
    pub fn monic(&self) -> Poly {
        match self.degree() {
            None => self.clone(),
            Some(d) => {
                let inv = self.field.inv(self.coeffs[d]);
                Poly::new(
                    self.coeffs
                        .iter()
                        .map(|&c| self.field.mul(c, inv))
                        .collect(),
                    self.field,
                )
            }
        }
    }

    /// Computes `self^exp mod modulus` by square-and-multiply.
    #[must_use]
    pub fn pow_mod(&self, mut exp: u64, modulus: &Poly) -> Poly {
        let mut base = self.rem(modulus);
        let mut acc = Poly::new(vec![1], self.field).rem(modulus);
        while exp > 0 {
            if exp & 1 == 1 {
                acc = acc.mul(&base).rem(modulus);
            }
            base = base.mul(&base).rem(modulus);
            exp >>= 1;
        }
        acc
    }

    /// Rabin's irreducibility test for a polynomial of degree `n ≥ 1` over
    /// `GF(p)`: `f` is irreducible iff `x^(p^n) ≡ x (mod f)` and for every
    /// prime divisor `q` of `n`, `gcd(x^(p^(n/q)) − x, f) = 1`.
    ///
    /// # Examples
    ///
    /// ```
    /// use bi_geometry::{poly::Poly, PrimeField};
    ///
    /// let f2 = PrimeField::new(2).unwrap();
    /// assert!(Poly::new(vec![1, 1, 1], f2).is_irreducible());  // x²+x+1
    /// assert!(!Poly::new(vec![1, 0, 1], f2).is_irreducible()); // x²+1 = (x+1)²
    /// ```
    #[must_use]
    pub fn is_irreducible(&self) -> bool {
        let n = match self.degree() {
            None | Some(0) => return false,
            Some(1) => return true,
            Some(n) => n,
        };
        let p = self.field.order();
        let x = Poly::x(self.field);
        // x^(p^n) mod f via iterated Frobenius.
        let mut frob = x.clone();
        for _ in 0..n {
            frob = frob.pow_mod(p, self);
        }
        if frob.sub(&x).rem(self) != Poly::zero(self.field) {
            return false;
        }
        for q in prime_divisors(n as u64) {
            let steps = n as u64 / q;
            let mut g = x.clone();
            for _ in 0..steps {
                g = g.pow_mod(p, self);
            }
            let gcd = g.sub(&x).gcd(self);
            if gcd.degree() != Some(0) {
                return false;
            }
        }
        true
    }
}

fn prime_divisors(mut n: u64) -> Vec<u64> {
    let mut out = Vec::new();
    let mut d = 2;
    while d * d <= n {
        if n % d == 0 {
            out.push(d);
            while n % d == 0 {
                n /= d;
            }
        }
        d += 1;
    }
    if n > 1 {
        out.push(n);
    }
    out
}

/// Finds the lexicographically first monic irreducible polynomial of degree
/// `e` over `GF(p)` by exhaustive search.
///
/// # Panics
///
/// Panics if `e == 0`. (A monic irreducible of every degree `e ≥ 1` exists
/// over every prime field, so the search always terminates.)
///
/// # Examples
///
/// ```
/// use bi_geometry::{poly, PrimeField};
///
/// let f = poly::find_irreducible(PrimeField::new(2).unwrap(), 3);
/// assert_eq!(f.degree(), Some(3));
/// assert!(f.is_irreducible());
/// ```
#[must_use]
pub fn find_irreducible(field: PrimeField, e: u32) -> Poly {
    assert!(e >= 1, "degree must be positive");
    let p = field.order();
    let e = e as usize;
    let count = p.pow(e as u32);
    for idx in 0..count {
        // Lower-degree coefficients from base-p digits of idx; leading = 1.
        let mut coeffs = Vec::with_capacity(e + 1);
        let mut rest = idx;
        for _ in 0..e {
            coeffs.push(rest % p);
            rest /= p;
        }
        coeffs.push(1);
        let f = Poly::new(coeffs, field);
        if f.is_irreducible() {
            return f;
        }
    }
    unreachable!("an irreducible polynomial of degree {e} exists over GF({p})");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gf(p: u64) -> PrimeField {
        PrimeField::new(p).unwrap()
    }

    #[test]
    fn construction_trims_and_reduces() {
        let f = gf(3);
        let p = Poly::new(vec![4, 0, 3, 0], f);
        assert_eq!(p.coeffs(), &[1]);
        assert_eq!(p.degree(), Some(0));
    }

    #[test]
    fn add_sub_roundtrip() {
        let f = gf(5);
        let a = Poly::new(vec![1, 2, 3], f);
        let b = Poly::new(vec![4, 4], f);
        assert_eq!(a.add(&b).sub(&b), a);
    }

    #[test]
    fn mul_degree_adds() {
        let f = gf(7);
        let a = Poly::new(vec![1, 1], f);
        let b = Poly::new(vec![2, 0, 1], f);
        assert_eq!(a.mul(&b).degree(), Some(3));
    }

    #[test]
    fn rem_by_linear_evaluates() {
        // p(x) mod (x - a) = p(a); over GF(5), x - 2 = x + 3.
        let f = gf(5);
        let p = Poly::new(vec![1, 2, 1], f); // 1 + 2x + x²  → p(2) = 1+4+4 = 9 = 4
        let m = Poly::new(vec![3, 1], f);
        assert_eq!(p.rem(&m).coeffs(), &[4]);
    }

    #[test]
    fn gcd_of_multiples() {
        let f = gf(3);
        let g = Poly::new(vec![1, 1], f);
        // Cofactors x²+1 (irreducible over GF(3)) and x+2 share no root.
        let a = g.mul(&Poly::new(vec![1, 0, 1], f));
        let b = g.mul(&Poly::new(vec![2, 1], f));
        assert_eq!(a.gcd(&b), g.monic());
    }

    #[test]
    fn known_irreducibles_over_gf2() {
        let f = gf(2);
        // x²+x+1, x³+x+1, x⁴+x+1 are irreducible over GF(2).
        assert!(Poly::new(vec![1, 1, 1], f).is_irreducible());
        assert!(Poly::new(vec![1, 1, 0, 1], f).is_irreducible());
        assert!(Poly::new(vec![1, 1, 0, 0, 1], f).is_irreducible());
        // x⁴+x²+1 = (x²+x+1)² is not.
        assert!(!Poly::new(vec![1, 0, 1, 0, 1], f).is_irreducible());
    }

    #[test]
    fn linear_polys_are_irreducible() {
        let f = gf(5);
        assert!(Poly::new(vec![2, 1], f).is_irreducible());
        assert!(!Poly::new(vec![2], f).is_irreducible());
        assert!(!Poly::zero(f).is_irreducible());
    }

    #[test]
    fn find_irreducible_for_various_fields() {
        for (p, e) in [(2, 1), (2, 2), (2, 4), (3, 2), (3, 3), (5, 2), (7, 2)] {
            let f = find_irreducible(gf(p), e);
            assert_eq!(f.degree(), Some(e as usize));
            assert!(f.is_irreducible(), "GF({p}), degree {e}");
        }
    }

    #[test]
    fn pow_mod_matches_naive() {
        let f = gf(3);
        let m = find_irreducible(f, 2);
        let x = Poly::x(f);
        let mut naive = Poly::new(vec![1], f);
        for e in 0..10 {
            assert_eq!(x.pow_mod(e, &m), naive.rem(&m), "exponent {e}");
            naive = naive.mul(&x);
        }
    }
}
