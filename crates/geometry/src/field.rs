//! Table-based finite fields `GF(p^e)`.

use std::fmt;

use crate::gf::PrimeField;
use crate::poly::{find_irreducible, Poly};
use crate::prime::prime_power;

/// Largest supported field order (the multiplication table has `q²`
/// entries).
pub const MAX_ORDER: u64 = 512;

/// Errors constructing a [`FiniteField`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FieldError {
    /// The requested order is not a prime power.
    NotPrimePower(u64),
    /// The requested order exceeds [`MAX_ORDER`].
    TooLarge(u64),
}

impl fmt::Display for FieldError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldError::NotPrimePower(q) => write!(f, "{q} is not a prime power"),
            FieldError::TooLarge(q) => write!(f, "field order {q} exceeds the {MAX_ORDER} limit"),
        }
    }
}

impl std::error::Error for FieldError {}

/// The finite field `GF(q)` for a prime power `q = p^e`, with precomputed
/// addition/multiplication tables.
///
/// Elements are `usize` indices in `0..q`; index 0 is the additive and
/// index 1 the multiplicative identity. For `e > 1` the element with index
/// `i` represents the polynomial whose coefficients are the base-`p` digits
/// of `i`, reduced modulo a monic irreducible found by
/// [`find_irreducible`].
///
/// # Examples
///
/// ```
/// use bi_geometry::FiniteField;
///
/// let f = FiniteField::new(4).unwrap(); // GF(4) = GF(2)[x]/(x²+x+1)
/// assert_eq!(f.order(), 4);
/// // In GF(4), x · x = x + 1: indices 2·2 = 3.
/// assert_eq!(f.mul(2, 2), 3);
/// assert_eq!(f.add(2, 3), 1);
/// ```
#[derive(Clone, Debug)]
pub struct FiniteField {
    q: usize,
    p: u64,
    e: u32,
    add: Vec<usize>,
    mul: Vec<usize>,
    inv: Vec<usize>,
}

impl FiniteField {
    /// Constructs `GF(q)`.
    ///
    /// # Errors
    ///
    /// Returns [`FieldError::NotPrimePower`] when `q` is not a prime power
    /// and [`FieldError::TooLarge`] when `q >` [`MAX_ORDER`].
    pub fn new(q: u64) -> Result<Self, FieldError> {
        let (p, e) = prime_power(q).ok_or(FieldError::NotPrimePower(q))?;
        if q > MAX_ORDER {
            return Err(FieldError::TooLarge(q));
        }
        let prime = PrimeField::new(p).expect("p is prime by construction");
        let q = q as usize;
        let (add, mul) = if e == 1 {
            let mut add = vec![0usize; q * q];
            let mut mul = vec![0usize; q * q];
            for a in 0..q {
                for b in 0..q {
                    add[a * q + b] = prime.add(a as u64, b as u64) as usize;
                    mul[a * q + b] = prime.mul(a as u64, b as u64) as usize;
                }
            }
            (add, mul)
        } else {
            let modulus = find_irreducible(prime, e);
            let elements: Vec<Poly> = (0..q)
                .map(|i| Poly::new(digits(i as u64, p, e as usize), prime))
                .collect();
            let mut add = vec![0usize; q * q];
            let mut mul = vec![0usize; q * q];
            for a in 0..q {
                for b in 0..q {
                    add[a * q + b] = index_of(&elements[a].add(&elements[b]), p);
                    mul[a * q + b] = index_of(&elements[a].mul(&elements[b]).rem(&modulus), p);
                }
            }
            (add, mul)
        };
        let mut inv = vec![0usize; q];
        for a in 1..q {
            for b in 1..q {
                if mul[a * q + b] == 1 {
                    inv[a] = b;
                    break;
                }
            }
            debug_assert_ne!(inv[a], 0, "element {a} lacks an inverse");
        }
        Ok(FiniteField {
            q,
            p,
            e,
            add,
            mul,
            inv,
        })
    }

    /// Field order `q`.
    #[must_use]
    pub fn order(&self) -> usize {
        self.q
    }

    /// Field characteristic `p`.
    #[must_use]
    pub fn characteristic(&self) -> u64 {
        self.p
    }

    /// Extension degree `e` (so `q = p^e`).
    #[must_use]
    pub fn degree(&self) -> u32 {
        self.e
    }

    fn check(&self, x: usize) -> usize {
        debug_assert!(x < self.q, "element {x} out of range for GF({})", self.q);
        x
    }

    /// Addition.
    #[must_use]
    pub fn add(&self, a: usize, b: usize) -> usize {
        self.add[self.check(a) * self.q + self.check(b)]
    }

    /// Multiplication.
    #[must_use]
    pub fn mul(&self, a: usize, b: usize) -> usize {
        self.mul[self.check(a) * self.q + self.check(b)]
    }

    /// Additive inverse.
    #[must_use]
    pub fn neg(&self, a: usize) -> usize {
        // Scan-free: -a is the unique b with a + b = 0; rows of the addition
        // table are permutations, so find it once per call (q ≤ 512).
        (0..self.q)
            .find(|&b| self.add(a, b) == 0)
            .expect("additive inverse exists")
    }

    /// Subtraction `a - b`.
    #[must_use]
    pub fn sub(&self, a: usize, b: usize) -> usize {
        self.add(a, self.neg(b))
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if `a == 0`.
    #[must_use]
    pub fn inv(&self, a: usize) -> usize {
        assert!(a != 0, "0 has no multiplicative inverse");
        self.inv[self.check(a)]
    }

    /// Division `a / b`.
    ///
    /// # Panics
    ///
    /// Panics if `b == 0`.
    #[must_use]
    pub fn div(&self, a: usize, b: usize) -> usize {
        self.mul(a, self.inv(b))
    }

    /// Iterates over all element indices.
    pub fn elements(&self) -> impl Iterator<Item = usize> {
        0..self.q
    }
}

fn digits(mut i: u64, p: u64, e: usize) -> Vec<u64> {
    let mut out = Vec::with_capacity(e);
    for _ in 0..e {
        out.push(i % p);
        i /= p;
    }
    out
}

fn index_of(poly: &Poly, p: u64) -> usize {
    let mut idx = 0u64;
    for &c in poly.coeffs().iter().rev() {
        idx = idx * p + c;
    }
    idx as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_orders() {
        assert!(matches!(
            FiniteField::new(6),
            Err(FieldError::NotPrimePower(6))
        ));
        assert!(matches!(
            FiniteField::new(1024),
            Err(FieldError::TooLarge(1024))
        ));
    }

    fn assert_field_axioms(f: &FiniteField) {
        let q = f.order();
        for a in 0..q {
            assert_eq!(f.add(a, 0), a);
            assert_eq!(f.mul(a, 1), a);
            assert_eq!(f.mul(a, 0), 0);
            assert_eq!(f.add(a, f.neg(a)), 0);
            if a != 0 {
                assert_eq!(f.mul(a, f.inv(a)), 1);
            }
            for b in 0..q {
                assert_eq!(f.add(a, b), f.add(b, a));
                assert_eq!(f.mul(a, b), f.mul(b, a));
                for c in 0..q {
                    assert_eq!(f.add(f.add(a, b), c), f.add(a, f.add(b, c)));
                    assert_eq!(f.mul(f.mul(a, b), c), f.mul(a, f.mul(b, c)));
                    assert_eq!(
                        f.mul(a, f.add(b, c)),
                        f.add(f.mul(a, b), f.mul(a, c)),
                        "distributivity"
                    );
                }
            }
        }
    }

    #[test]
    fn gf4_gf8_gf9_satisfy_field_axioms() {
        for q in [4, 8, 9] {
            assert_field_axioms(&FiniteField::new(q).unwrap());
        }
    }

    #[test]
    fn prime_fields_match_modular_arithmetic() {
        let f = FiniteField::new(7).unwrap();
        for a in 0..7usize {
            for b in 0..7usize {
                assert_eq!(f.add(a, b), (a + b) % 7);
                assert_eq!(f.mul(a, b), (a * b) % 7);
            }
        }
    }

    #[test]
    fn multiplicative_group_is_cyclic_of_order_q_minus_1() {
        let f = FiniteField::new(8).unwrap();
        // Every nonzero element has order dividing 7 (prime), so every
        // non-identity element generates.
        for a in 2..8 {
            let mut x = a;
            let mut order = 1;
            while x != 1 {
                x = f.mul(x, a);
                order += 1;
            }
            assert_eq!(order, 7, "element {a}");
        }
    }

    #[test]
    fn metadata_is_exposed() {
        let f = FiniteField::new(9).unwrap();
        assert_eq!(f.order(), 9);
        assert_eq!(f.characteristic(), 3);
        assert_eq!(f.degree(), 2);
        assert_eq!(f.elements().count(), 9);
    }

    #[test]
    fn sub_and_div_roundtrip() {
        let f = FiniteField::new(16).unwrap();
        for a in 0..16 {
            for b in 0..16 {
                assert_eq!(f.add(f.sub(a, b), b), a);
                if b != 0 {
                    assert_eq!(f.mul(f.div(a, b), b), a);
                }
            }
        }
    }
}
