//! Arithmetic in the prime field `GF(p)`.

use crate::prime::is_prime;

/// The prime field `GF(p)`. Elements are `u64` values in `0..p`.
///
/// # Examples
///
/// ```
/// use bi_geometry::PrimeField;
///
/// let f = PrimeField::new(7).unwrap();
/// assert_eq!(f.add(5, 4), 2);
/// assert_eq!(f.mul(3, 5), 1);
/// assert_eq!(f.inv(3), 5);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PrimeField {
    p: u64,
}

/// Error returned when constructing a [`PrimeField`] with a non-prime
/// modulus.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NotPrimeError(pub u64);

impl std::fmt::Display for NotPrimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} is not prime", self.0)
    }
}

impl std::error::Error for NotPrimeError {}

impl PrimeField {
    /// Creates `GF(p)`.
    ///
    /// # Errors
    ///
    /// Returns [`NotPrimeError`] if `p` is not prime.
    pub fn new(p: u64) -> Result<Self, NotPrimeError> {
        if is_prime(p) {
            Ok(PrimeField { p })
        } else {
            Err(NotPrimeError(p))
        }
    }

    /// The field characteristic (and order) `p`.
    #[must_use]
    pub fn order(&self) -> u64 {
        self.p
    }

    fn check(&self, x: u64) -> u64 {
        debug_assert!(x < self.p, "element {x} out of range for GF({})", self.p);
        x
    }

    /// Addition mod `p`.
    #[must_use]
    pub fn add(&self, a: u64, b: u64) -> u64 {
        (self.check(a) + self.check(b)) % self.p
    }

    /// Subtraction mod `p`.
    #[must_use]
    pub fn sub(&self, a: u64, b: u64) -> u64 {
        (self.check(a) + self.p - self.check(b)) % self.p
    }

    /// Negation mod `p`.
    #[must_use]
    pub fn neg(&self, a: u64) -> u64 {
        (self.p - self.check(a)) % self.p
    }

    /// Multiplication mod `p`.
    #[must_use]
    pub fn mul(&self, a: u64, b: u64) -> u64 {
        self.check(a) * self.check(b) % self.p
    }

    /// Exponentiation by squaring.
    #[must_use]
    pub fn pow(&self, mut base: u64, mut exp: u64) -> u64 {
        base = self.check(base);
        let mut acc = 1 % self.p;
        while exp > 0 {
            if exp & 1 == 1 {
                acc = acc * base % self.p;
            }
            base = base * base % self.p;
            exp >>= 1;
        }
        acc
    }

    /// Multiplicative inverse via Fermat's little theorem.
    ///
    /// # Panics
    ///
    /// Panics if `a == 0`.
    #[must_use]
    pub fn inv(&self, a: u64) -> u64 {
        assert!(a != 0, "0 has no multiplicative inverse");
        self.pow(a, self.p - 2)
    }

    /// Division `a / b`.
    ///
    /// # Panics
    ///
    /// Panics if `b == 0`.
    #[must_use]
    pub fn div(&self, a: u64, b: u64) -> u64 {
        self.mul(a, self.inv(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_composite_modulus() {
        assert_eq!(PrimeField::new(6), Err(NotPrimeError(6)));
        assert!(PrimeField::new(6).unwrap_err().to_string().contains("6"));
    }

    #[test]
    fn field_axioms_hold_in_gf5() {
        let f = PrimeField::new(5).unwrap();
        for a in 0..5 {
            for b in 0..5 {
                assert_eq!(f.add(a, b), f.add(b, a));
                assert_eq!(f.mul(a, b), f.mul(b, a));
                assert_eq!(f.sub(f.add(a, b), b), a);
                if b != 0 {
                    assert_eq!(f.mul(f.div(a, b), b), a);
                }
            }
        }
    }

    #[test]
    fn inverse_roundtrips() {
        let f = PrimeField::new(11).unwrap();
        for a in 1..11 {
            assert_eq!(f.mul(a, f.inv(a)), 1);
        }
    }

    #[test]
    fn pow_matches_repeated_multiplication() {
        let f = PrimeField::new(13).unwrap();
        let mut acc = 1;
        for e in 0..10 {
            assert_eq!(f.pow(6, e), acc);
            acc = f.mul(acc, 6);
        }
    }

    #[test]
    #[should_panic(expected = "no multiplicative inverse")]
    fn zero_has_no_inverse() {
        let f = PrimeField::new(3).unwrap();
        let _ = f.inv(0);
    }
}
