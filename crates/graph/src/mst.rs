//! Minimum spanning trees (Kruskal).

use bi_util::TotalF64;

use crate::graph::{EdgeId, Graph};
use crate::union_find::UnionFind;

/// Computes a minimum spanning forest of an undirected graph by Kruskal's
/// algorithm; returns `(total_cost, edges)`.
///
/// If the graph is disconnected the result spans each component (a
/// forest).
///
/// # Panics
///
/// Panics if the graph is directed.
///
/// # Examples
///
/// ```
/// use bi_graph::{Direction, Graph};
///
/// let mut g = Graph::new(Direction::Undirected);
/// let a = g.add_node();
/// let b = g.add_node();
/// let c = g.add_node();
/// g.add_edge(a, b, 1.0);
/// g.add_edge(b, c, 2.0);
/// g.add_edge(a, c, 5.0);
/// let (cost, edges) = bi_graph::mst::kruskal(&g);
/// assert_eq!(cost, 3.0);
/// assert_eq!(edges.len(), 2);
/// ```
#[must_use]
pub fn kruskal(graph: &Graph) -> (f64, Vec<EdgeId>) {
    assert!(
        !graph.is_directed(),
        "minimum spanning tree requires an undirected graph"
    );
    let mut order: Vec<EdgeId> = graph.edges().map(|(id, _)| id).collect();
    order.sort_by_key(|&e| TotalF64::new(graph.edge(e).cost()));
    let mut uf = UnionFind::new(graph.node_count());
    let mut picked = Vec::new();
    let mut cost = 0.0;
    for e in order {
        let edge = graph.edge(e);
        if uf.union(edge.source().index(), edge.target().index()) {
            picked.push(e);
            cost += edge.cost();
        }
    }
    (cost, picked)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::graph::Direction;

    #[test]
    fn spanning_tree_has_n_minus_1_edges() {
        let g = generators::gnp_connected(Direction::Undirected, 15, 0.3, (1.0, 2.0), 3);
        let (_, edges) = kruskal(&g);
        assert_eq!(edges.len(), 14);
    }

    #[test]
    fn picks_cheapest_edges_of_a_cycle() {
        let mut g = Graph::new(Direction::Undirected);
        let vs = g.add_nodes(3);
        g.add_edge(vs[0], vs[1], 1.0);
        g.add_edge(vs[1], vs[2], 1.0);
        g.add_edge(vs[2], vs[0], 10.0);
        let (cost, _) = kruskal(&g);
        assert_eq!(cost, 2.0);
    }

    #[test]
    fn forest_on_disconnected_graph() {
        let mut g = Graph::new(Direction::Undirected);
        let vs = g.add_nodes(4);
        g.add_edge(vs[0], vs[1], 1.0);
        g.add_edge(vs[2], vs[3], 2.0);
        let (cost, edges) = kruskal(&g);
        assert_eq!(cost, 3.0);
        assert_eq!(edges.len(), 2);
    }

    #[test]
    #[should_panic(expected = "undirected")]
    fn rejects_directed_graphs() {
        let g = generators::path_graph(Direction::Directed, 3, 1.0);
        let _ = kruskal(&g);
    }
}
