//! All-pairs shortest paths — the graph metric.

use crate::dijkstra::dijkstra;
use crate::graph::{Graph, NodeId};

/// The full distance matrix of a graph under its edge costs.
///
/// Entry `[u][v]` is the shortest-path distance from `u` to `v`
/// (`f64::INFINITY` if unreachable). Computed by `n` Dijkstra runs.
///
/// # Examples
///
/// ```
/// use bi_graph::{Direction, Graph};
///
/// let mut g = Graph::new(Direction::Undirected);
/// let a = g.add_node();
/// let b = g.add_node();
/// g.add_edge(a, b, 2.5);
/// let d = bi_graph::apsp::all_pairs(&g);
/// assert_eq!(d[a.index()][b.index()], 2.5);
/// assert_eq!(d[a.index()][a.index()], 0.0);
/// ```
#[must_use]
pub fn all_pairs(graph: &Graph) -> Vec<Vec<f64>> {
    graph
        .nodes()
        .map(|u| {
            dijkstra(graph, u, |e| graph.edge(e).cost())
                .distances()
                .to_vec()
        })
        .collect()
}

/// The largest finite pairwise distance, or 0 for graphs with < 2 nodes.
///
/// # Examples
///
/// ```
/// let g = bi_graph::generators::path_graph(bi_graph::Direction::Undirected, 4, 1.0);
/// let d = bi_graph::apsp::all_pairs(&g);
/// assert_eq!(bi_graph::apsp::diameter(&d), 3.0);
/// ```
#[must_use]
pub fn diameter(dist: &[Vec<f64>]) -> f64 {
    dist.iter()
        .flat_map(|row| row.iter())
        .copied()
        .filter(|d| d.is_finite())
        .fold(0.0, f64::max)
}

/// Checks whether every node can reach every other node.
///
/// # Examples
///
/// ```
/// let g = bi_graph::generators::path_graph(bi_graph::Direction::Undirected, 3, 1.0);
/// assert!(bi_graph::apsp::is_strongly_connected(&g));
/// ```
#[must_use]
pub fn is_strongly_connected(graph: &Graph) -> bool {
    if graph.node_count() == 0 {
        return true;
    }
    // For undirected graphs one Dijkstra suffices; for directed graphs we
    // check reachability from node 0 plus reachability *to* node 0 by
    // scanning every source (n is small in this workspace).
    let from0 = dijkstra(graph, NodeId::new(0), |e| graph.edge(e).cost());
    if !graph.nodes().all(|v| from0.is_reachable(v)) {
        return false;
    }
    if !graph.is_directed() {
        return true;
    }
    graph
        .nodes()
        .all(|u| dijkstra(graph, u, |e| graph.edge(e).cost()).is_reachable(NodeId::new(0)))
}

/// Floyd–Warshall all-pairs shortest paths — an independent `O(n³)`
/// implementation used to cross-check [`all_pairs`] in tests and preferred
/// for dense graphs.
///
/// # Examples
///
/// ```
/// let g = bi_graph::generators::cycle_graph(bi_graph::Direction::Undirected, 5, 1.0);
/// let a = bi_graph::apsp::all_pairs(&g);
/// let b = bi_graph::apsp::floyd_warshall(&g);
/// assert_eq!(a, b);
/// ```
#[must_use]
pub fn floyd_warshall(graph: &Graph) -> Vec<Vec<f64>> {
    let n = graph.node_count();
    let mut dist = vec![vec![f64::INFINITY; n]; n];
    for (i, row) in dist.iter_mut().enumerate() {
        row[i] = 0.0;
    }
    for (_, e) in graph.edges() {
        let (u, v) = (e.source().index(), e.target().index());
        if e.cost() < dist[u][v] {
            dist[u][v] = e.cost();
        }
        if !graph.is_directed() && e.cost() < dist[v][u] {
            dist[v][u] = e.cost();
        }
    }
    for k in 0..n {
        for i in 0..n {
            if !dist[i][k].is_finite() {
                continue;
            }
            for j in 0..n {
                let through = dist[i][k] + dist[k][j];
                if through < dist[i][j] {
                    dist[i][j] = through;
                }
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::graph::Direction;

    #[test]
    fn floyd_warshall_agrees_with_dijkstra_apsp() {
        for seed in 0..6 {
            for direction in [Direction::Directed, Direction::Undirected] {
                let g = generators::gnp_connected(direction, 10, 0.3, (0.5, 2.0), seed);
                let a = all_pairs(&g);
                let b = floyd_warshall(&g);
                for i in 0..10 {
                    for j in 0..10 {
                        assert!(
                            (a[i][j] - b[i][j]).abs() < 1e-9,
                            "{direction:?} seed {seed}: d({i},{j})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn floyd_warshall_handles_parallel_edges() {
        let mut g = Graph::new(Direction::Undirected);
        let a = g.add_node();
        let b = g.add_node();
        g.add_edge(a, b, 5.0);
        g.add_edge(a, b, 2.0);
        assert_eq!(floyd_warshall(&g)[0][1], 2.0);
    }

    #[test]
    fn matrix_is_symmetric_for_undirected_graphs() {
        let g = generators::path_graph(Direction::Undirected, 5, 2.0);
        let d = all_pairs(&g);
        for (i, row) in d.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                assert_eq!(v, d[j][i]);
            }
        }
    }

    #[test]
    fn satisfies_triangle_inequality() {
        let g = generators::gnp_connected(Direction::Undirected, 12, 0.3, (0.5, 2.0), 7);
        let d = all_pairs(&g);
        let n = g.node_count();
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    assert!(d[i][j] <= d[i][k] + d[k][j] + 1e-9);
                }
            }
        }
    }

    #[test]
    fn diameter_of_path_is_length() {
        let g = generators::path_graph(Direction::Undirected, 6, 1.0);
        assert_eq!(diameter(&all_pairs(&g)), 5.0);
    }

    #[test]
    fn directed_one_way_path_is_not_strongly_connected() {
        let g = generators::path_graph(Direction::Directed, 3, 1.0);
        assert!(!is_strongly_connected(&g));
    }

    #[test]
    fn empty_graph_is_connected() {
        let g = Graph::new(Direction::Directed);
        assert!(is_strongly_connected(&g));
    }
}
