//! Graph families used by the experiments.

use rand::Rng;

use crate::graph::{Direction, Graph, NodeId};

/// A path `v0 - v1 - … - v(n-1)` with uniform edge cost.
///
/// # Panics
///
/// Panics if `cost` is negative or not finite.
///
/// # Examples
///
/// ```
/// let g = bi_graph::generators::path_graph(bi_graph::Direction::Undirected, 4, 1.0);
/// assert_eq!(g.node_count(), 4);
/// assert_eq!(g.edge_count(), 3);
/// ```
#[must_use]
pub fn path_graph(direction: Direction, n: usize, cost: f64) -> Graph {
    let mut g = Graph::with_nodes(direction, n);
    for i in 1..n {
        g.add_edge(NodeId::new(i - 1), NodeId::new(i), cost);
    }
    g
}

/// A cycle on `n ≥ 3` nodes with uniform edge cost.
///
/// # Panics
///
/// Panics if `n < 3`.
#[must_use]
pub fn cycle_graph(direction: Direction, n: usize, cost: f64) -> Graph {
    assert!(n >= 3, "cycle needs at least 3 nodes");
    let mut g = path_graph(direction, n, cost);
    g.add_edge(NodeId::new(n - 1), NodeId::new(0), cost);
    g
}

/// A star: node 0 is the hub, nodes `1..=leaves` are spokes. Directed
/// stars point hub → leaf.
#[must_use]
pub fn star_graph(direction: Direction, leaves: usize, cost: f64) -> Graph {
    let mut g = Graph::with_nodes(direction, leaves + 1);
    for i in 1..=leaves {
        g.add_edge(NodeId::new(0), NodeId::new(i), cost);
    }
    g
}

/// A complete graph with uniform edge cost. Directed complete graphs get
/// both orientations of every pair.
#[must_use]
pub fn complete_graph(direction: Direction, n: usize, cost: f64) -> Graph {
    let mut g = Graph::with_nodes(direction, n);
    for i in 0..n {
        for j in (i + 1)..n {
            g.add_edge(NodeId::new(i), NodeId::new(j), cost);
            if direction == Direction::Directed {
                g.add_edge(NodeId::new(j), NodeId::new(i), cost);
            }
        }
    }
    g
}

/// An undirected `w × h` grid with uniform edge cost; node `(x, y)` has
/// index `y·w + x`.
///
/// # Panics
///
/// Panics if `w == 0` or `h == 0`.
#[must_use]
pub fn grid_graph(w: usize, h: usize, cost: f64) -> Graph {
    assert!(w > 0 && h > 0, "grid dimensions must be positive");
    let mut g = Graph::with_nodes(Direction::Undirected, w * h);
    for y in 0..h {
        for x in 0..w {
            let v = NodeId::new(y * w + x);
            if x + 1 < w {
                g.add_edge(v, NodeId::new(y * w + x + 1), cost);
            }
            if y + 1 < h {
                g.add_edge(v, NodeId::new((y + 1) * w + x), cost);
            }
        }
    }
    g
}

/// A connected random graph: a random spanning tree plus each remaining
/// pair independently with probability `p`, edge costs uniform in
/// `cost_range`. Directed graphs get both orientations of every generated
/// edge (with independently drawn costs), so they are strongly connected.
///
/// # Panics
///
/// Panics if `n == 0`, `p ∉ [0, 1]`, or the cost range is empty/negative.
///
/// # Examples
///
/// ```
/// let g = bi_graph::generators::gnp_connected(
///     bi_graph::Direction::Undirected, 10, 0.2, (1.0, 2.0), 42);
/// assert!(bi_graph::apsp::is_strongly_connected(&g));
/// ```
#[must_use]
pub fn gnp_connected(
    direction: Direction,
    n: usize,
    p: f64,
    cost_range: (f64, f64),
    seed: u64,
) -> Graph {
    assert!(n > 0, "need at least one node");
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    let (lo, hi) = cost_range;
    assert!(lo >= 0.0 && hi >= lo, "invalid cost range");
    let mut rng = bi_util::rng::seeded(seed);
    let draw = move |rng: &mut rand::rngs::StdRng| {
        if lo == hi {
            lo
        } else {
            rng.random_range(lo..hi)
        }
    };
    let mut g = Graph::with_nodes(direction, n);
    // Random spanning tree: attach node i to a uniformly random earlier node.
    for i in 1..n {
        let j = rng.random_range(0..i);
        let c = draw(&mut rng);
        g.add_edge(NodeId::new(j), NodeId::new(i), c);
        if direction == Direction::Directed {
            let c = draw(&mut rng);
            g.add_edge(NodeId::new(i), NodeId::new(j), c);
        }
    }
    for i in 0..n {
        for j in (i + 1)..n {
            if rng.random_range(0.0..1.0) < p {
                let c = draw(&mut rng);
                g.add_edge(NodeId::new(i), NodeId::new(j), c);
                if direction == Direction::Directed {
                    let c = draw(&mut rng);
                    g.add_edge(NodeId::new(j), NodeId::new(i), c);
                }
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apsp;

    #[test]
    fn path_counts() {
        let g = path_graph(Direction::Directed, 5, 2.0);
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 4);
    }

    #[test]
    fn cycle_is_connected_both_ways() {
        let g = cycle_graph(Direction::Undirected, 5, 1.0);
        assert_eq!(g.edge_count(), 5);
        assert!(apsp::is_strongly_connected(&g));
    }

    #[test]
    fn star_degrees() {
        let g = star_graph(Direction::Undirected, 6, 1.0);
        assert_eq!(g.degree(NodeId::new(0)), 6);
        assert_eq!(g.degree(NodeId::new(1)), 1);
    }

    #[test]
    fn complete_graph_edge_count() {
        let g = complete_graph(Direction::Undirected, 5, 1.0);
        assert_eq!(g.edge_count(), 10);
        let gd = complete_graph(Direction::Directed, 5, 1.0);
        assert_eq!(gd.edge_count(), 20);
    }

    #[test]
    fn grid_edge_count() {
        let g = grid_graph(3, 2, 1.0);
        // horizontal: 2 per row * 2 rows = 4; vertical: 3.
        assert_eq!(g.edge_count(), 7);
    }

    #[test]
    fn gnp_is_connected_and_deterministic() {
        let g1 = gnp_connected(Direction::Undirected, 20, 0.1, (1.0, 5.0), 1);
        let g2 = gnp_connected(Direction::Undirected, 20, 0.1, (1.0, 5.0), 1);
        assert!(apsp::is_strongly_connected(&g1));
        assert_eq!(g1.edge_count(), g2.edge_count());
        for ((_, a), (_, b)) in g1.edges().zip(g2.edges()) {
            assert_eq!(a.cost(), b.cost());
        }
    }

    #[test]
    fn directed_gnp_is_strongly_connected() {
        let g = gnp_connected(Direction::Directed, 12, 0.1, (1.0, 2.0), 4);
        assert!(apsp::is_strongly_connected(&g));
    }

    #[test]
    fn constant_cost_range_is_allowed() {
        let g = gnp_connected(Direction::Undirected, 6, 0.5, (1.0, 1.0), 2);
        assert!(g.edges().all(|(_, e)| e.cost() == 1.0));
    }
}
