//! Enumeration of simple paths — the action sets of NCS agents.
//!
//! In a network cost-sharing game every cost-minimal action is a single
//! simple path from the agent's source to her destination (see the
//! action-space convention in `DESIGN.md`), so equilibrium and optimum
//! computations enumerate these paths as finite action sets.

use crate::graph::{EdgeId, Graph, NodeId};

/// Upper bounds for [`simple_paths`] enumeration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PathLimits {
    /// Maximum number of paths to return.
    pub max_paths: usize,
    /// Maximum number of edges per path.
    pub max_len: usize,
}

impl Default for PathLimits {
    fn default() -> Self {
        PathLimits {
            max_paths: 100_000,
            max_len: usize::MAX,
        }
    }
}

/// Enumerates simple `s → t` paths as edge-id sequences, in DFS order,
/// stopping at the given limits.
///
/// For `s == t` the unique result is the empty path. Returns an empty
/// vector when no path exists. The enumeration is exhaustive whenever the
/// limits are not hit, which the callers in this workspace check via
/// [`PathLimits::max_paths`].
///
/// # Examples
///
/// ```
/// use bi_graph::{paths, Direction, Graph};
///
/// let mut g = Graph::new(Direction::Directed);
/// let a = g.add_node();
/// let b = g.add_node();
/// let c = g.add_node();
/// g.add_edge(a, b, 1.0);
/// g.add_edge(b, c, 1.0);
/// g.add_edge(a, c, 1.0);
/// let ps = paths::simple_paths(&g, a, c, paths::PathLimits::default());
/// assert_eq!(ps.len(), 2);
/// ```
#[must_use]
pub fn simple_paths(graph: &Graph, s: NodeId, t: NodeId, limits: PathLimits) -> Vec<Vec<EdgeId>> {
    assert!(
        s.index() < graph.node_count() && t.index() < graph.node_count(),
        "path endpoint out of range"
    );
    let mut result = Vec::new();
    if s == t {
        result.push(Vec::new());
        return result;
    }
    let mut visited = vec![false; graph.node_count()];
    visited[s.index()] = true;
    let mut stack: Vec<EdgeId> = Vec::new();
    dfs(graph, s, t, limits, &mut visited, &mut stack, &mut result);
    result
}

fn dfs(
    graph: &Graph,
    u: NodeId,
    t: NodeId,
    limits: PathLimits,
    visited: &mut Vec<bool>,
    stack: &mut Vec<EdgeId>,
    result: &mut Vec<Vec<EdgeId>>,
) {
    if result.len() >= limits.max_paths {
        return;
    }
    if u == t {
        result.push(stack.clone());
        return;
    }
    if stack.len() >= limits.max_len {
        return;
    }
    for (e, v) in graph.neighbors(u) {
        if visited[v.index()] {
            continue;
        }
        visited[v.index()] = true;
        stack.push(e);
        dfs(graph, v, t, limits, visited, stack, result);
        stack.pop();
        visited[v.index()] = false;
        if result.len() >= limits.max_paths {
            return;
        }
    }
}

/// Sum of edge costs along a path.
///
/// # Examples
///
/// ```
/// use bi_graph::{paths, Direction, Graph};
///
/// let mut g = Graph::new(Direction::Directed);
/// let a = g.add_node();
/// let b = g.add_node();
/// let e = g.add_edge(a, b, 2.0);
/// assert_eq!(paths::path_cost(&g, &[e]), 2.0);
/// ```
#[must_use]
pub fn path_cost(graph: &Graph, path: &[EdgeId]) -> f64 {
    path.iter().map(|&e| graph.edge(e).cost()).sum()
}

/// Verifies that `path` is a walk from `s` to `t` (each edge leaves the
/// endpoint reached by the previous one; for undirected graphs either
/// orientation is accepted).
///
/// # Examples
///
/// ```
/// use bi_graph::{paths, Direction, Graph};
///
/// let mut g = Graph::new(Direction::Undirected);
/// let a = g.add_node();
/// let b = g.add_node();
/// let e = g.add_edge(a, b, 1.0);
/// assert!(paths::is_path(&g, a, b, &[e]));
/// assert!(paths::is_path(&g, b, a, &[e]));
/// assert!(!paths::is_path(&g, a, a, &[e]));
/// ```
#[must_use]
pub fn is_path(graph: &Graph, s: NodeId, t: NodeId, path: &[EdgeId]) -> bool {
    let mut cur = s;
    for &e in path {
        let edge = graph.edge(e);
        if edge.source() == cur {
            cur = edge.target();
        } else if !graph.is_directed() && edge.target() == cur {
            cur = edge.source();
        } else {
            return false;
        }
    }
    cur == t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::graph::Direction;

    #[test]
    fn single_edge_path() {
        let mut g = Graph::new(Direction::Directed);
        let a = g.add_node();
        let b = g.add_node();
        g.add_edge(a, b, 1.0);
        let ps = simple_paths(&g, a, b, PathLimits::default());
        assert_eq!(ps.len(), 1);
        assert_eq!(ps[0].len(), 1);
    }

    #[test]
    fn source_equals_target_gives_empty_path() {
        let g = generators::path_graph(Direction::Undirected, 3, 1.0);
        let ps = simple_paths(&g, NodeId::new(1), NodeId::new(1), PathLimits::default());
        assert_eq!(ps, vec![Vec::<EdgeId>::new()]);
    }

    #[test]
    fn counts_paths_in_complete_graph() {
        // K4 undirected: simple paths between two fixed nodes:
        // direct (1), via one intermediate (2), via two (2) = 5.
        let g = generators::complete_graph(Direction::Undirected, 4, 1.0);
        let ps = simple_paths(&g, NodeId::new(0), NodeId::new(3), PathLimits::default());
        assert_eq!(ps.len(), 5);
    }

    #[test]
    fn respects_max_len() {
        let g = generators::complete_graph(Direction::Undirected, 4, 1.0);
        let ps = simple_paths(
            &g,
            NodeId::new(0),
            NodeId::new(3),
            PathLimits {
                max_paths: 1000,
                max_len: 1,
            },
        );
        assert_eq!(ps.len(), 1);
    }

    #[test]
    fn respects_max_paths() {
        let g = generators::complete_graph(Direction::Undirected, 5, 1.0);
        let ps = simple_paths(
            &g,
            NodeId::new(0),
            NodeId::new(4),
            PathLimits {
                max_paths: 3,
                max_len: usize::MAX,
            },
        );
        assert_eq!(ps.len(), 3);
    }

    #[test]
    fn all_enumerated_paths_are_valid_and_distinct() {
        let g = generators::gnp_connected(Direction::Undirected, 8, 0.4, (1.0, 1.0), 11);
        let s = NodeId::new(0);
        let t = NodeId::new(7);
        let ps = simple_paths(&g, s, t, PathLimits::default());
        for p in &ps {
            assert!(is_path(&g, s, t, p));
        }
        let mut sorted = ps.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), ps.len());
    }

    #[test]
    fn no_paths_when_disconnected() {
        let mut g = Graph::new(Direction::Undirected);
        let a = g.add_node();
        let b = g.add_node();
        let _ = (a, b);
        assert!(simple_paths(&g, a, b, PathLimits::default()).is_empty());
    }

    #[test]
    fn directed_enumeration_respects_orientation() {
        let mut g = Graph::new(Direction::Directed);
        let a = g.add_node();
        let b = g.add_node();
        g.add_edge(b, a, 1.0);
        assert!(simple_paths(&g, a, b, PathLimits::default()).is_empty());
    }
}
