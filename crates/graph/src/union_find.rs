//! Disjoint-set union with path compression and union by rank.

/// A union-find structure over `0..n`.
///
/// # Examples
///
/// ```
/// let mut uf = bi_graph::union_find::UnionFind::new(4);
/// assert!(uf.union(0, 1));
/// assert!(!uf.union(1, 0));
/// assert!(uf.connected(0, 1));
/// assert!(!uf.connected(0, 2));
/// assert_eq!(uf.component_count(), 3);
/// ```
#[derive(Clone, Debug)]
pub struct UnionFind {
    parent: Vec<usize>,
    rank: Vec<u8>,
    components: usize,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    #[must_use]
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            rank: vec![0; n],
            components: n,
        }
    }

    /// Returns the representative of `x`'s set.
    ///
    /// # Panics
    ///
    /// Panics if `x >= n`.
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    /// Merges the sets containing `a` and `b`; returns `true` if they were
    /// previously distinct.
    ///
    /// # Panics
    ///
    /// Panics if `a >= n` or `b >= n`.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        self.components -= 1;
        match self.rank[ra].cmp(&self.rank[rb]) {
            std::cmp::Ordering::Less => self.parent[ra] = rb,
            std::cmp::Ordering::Greater => self.parent[rb] = ra,
            std::cmp::Ordering::Equal => {
                self.parent[rb] = ra;
                self.rank[ra] += 1;
            }
        }
        true
    }

    /// Whether `a` and `b` are in the same set.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Number of disjoint sets.
    #[must_use]
    pub fn component_count(&self) -> usize {
        self.components
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_start_disjoint() {
        let mut uf = UnionFind::new(3);
        assert_eq!(uf.component_count(), 3);
        assert!(!uf.connected(0, 2));
    }

    #[test]
    fn union_chains_collapse() {
        let mut uf = UnionFind::new(5);
        uf.union(0, 1);
        uf.union(1, 2);
        uf.union(3, 4);
        assert!(uf.connected(0, 2));
        assert!(uf.connected(4, 3));
        assert!(!uf.connected(2, 3));
        assert_eq!(uf.component_count(), 2);
        uf.union(2, 3);
        assert_eq!(uf.component_count(), 1);
    }

    #[test]
    fn repeated_unions_are_idempotent() {
        let mut uf = UnionFind::new(2);
        assert!(uf.union(0, 1));
        assert!(!uf.union(0, 1));
        assert_eq!(uf.component_count(), 1);
    }
}
