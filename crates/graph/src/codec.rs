//! Wire-codec ([`Encode`]/[`Decode`]) implementation for [`Graph`] —
//! the substrate the NCS game codec (`bi-ncs`) builds on.
//!
//! Representation:
//!
//! ```json
//! {"direction":"directed","nodes":3,
//!  "edges":[{"source":0,"target":1,"cost":1.5}, ...]}
//! ```
//!
//! Edge order is preserved (edge ids are dense indices, and paths on the
//! wire reference them), so encode/decode is the identity on ids.
//!
//! # Examples
//!
//! ```
//! use bi_graph::{Direction, Graph};
//! use bi_util::{Decode, Encode};
//!
//! let mut g = Graph::with_nodes(Direction::Undirected, 2);
//! g.add_edge(bi_graph::NodeId::new(0), bi_graph::NodeId::new(1), 2.5);
//! let decoded = Graph::decode(&g.encode()).unwrap();
//! assert_eq!(decoded.canonical_bytes(), g.canonical_bytes());
//! ```

use bi_util::json::{field_arr, field_f64, field_str, field_usize};
use bi_util::{CodecError, Decode, Encode, Json};

use crate::graph::{Direction, Graph, NodeId};

/// Largest node count a wire graph may declare. The bound keeps a
/// constant-size hostile body (`"nodes": 9e15` is a dozen bytes) from
/// forcing a petabyte adjacency allocation; 100k nodes ≈ 2.4 MB of
/// adjacency headers, far beyond anything the solver can enumerate
/// anyway.
pub const MAX_WIRE_NODES: usize = 100_000;

impl Encode for Graph {
    fn encode(&self) -> Json {
        let direction = match self.direction() {
            Direction::Directed => "directed",
            Direction::Undirected => "undirected",
        };
        let edges = Json::Arr(
            self.edges()
                .map(|(_, e)| {
                    Json::Obj(vec![
                        ("source".into(), Json::num(e.source().index() as f64)),
                        ("target".into(), Json::num(e.target().index() as f64)),
                        ("cost".into(), Json::num(e.cost())),
                    ])
                })
                .collect(),
        );
        Json::Obj(vec![
            ("direction".into(), Json::str(direction)),
            ("nodes".into(), Json::num(self.node_count() as f64)),
            ("edges".into(), edges),
        ])
    }
}

impl Decode for Graph {
    fn decode(v: &Json) -> Result<Self, CodecError> {
        let direction = match field_str(v, "direction")? {
            "directed" => Direction::Directed,
            "undirected" => Direction::Undirected,
            other => {
                return Err(CodecError::new(format!(
                    "`direction` must be `directed` or `undirected`, got `{other}`"
                )))
            }
        };
        let nodes = field_usize(v, "nodes")?;
        if nodes > MAX_WIRE_NODES {
            return Err(CodecError::new(format!(
                "`nodes` = {nodes} exceeds the wire limit of {MAX_WIRE_NODES}"
            )));
        }
        let mut graph = Graph::with_nodes(direction, nodes);
        for (idx, edge) in field_arr(v, "edges")?.iter().enumerate() {
            let ctx = |e: CodecError| e.context(&format!("edges[{idx}]"));
            let source = field_usize(edge, "source").map_err(ctx)?;
            let target = field_usize(edge, "target").map_err(ctx)?;
            let cost = field_f64(edge, "cost").map_err(ctx)?;
            if source >= nodes || target >= nodes {
                return Err(CodecError::new(format!(
                    "edges[{idx}]: endpoint out of range (graph has {nodes} nodes)"
                )));
            }
            if !(cost.is_finite() && cost >= 0.0) {
                return Err(CodecError::new(format!(
                    "edges[{idx}]: cost must be finite and non-negative"
                )));
            }
            graph.add_edge(NodeId::new(source), NodeId::new(target), cost);
        }
        Ok(graph)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graphs_round_trip_preserving_edge_ids() {
        for direction in [Direction::Directed, Direction::Undirected] {
            let mut g = Graph::with_nodes(direction, 4);
            g.add_edge(NodeId::new(0), NodeId::new(1), 1.0);
            g.add_edge(NodeId::new(1), NodeId::new(2), 0.5);
            // A parallel edge: ids must survive the trip.
            g.add_edge(NodeId::new(0), NodeId::new(1), 2.0);
            let decoded = Graph::decode(&g.encode()).unwrap();
            assert_eq!(decoded.canonical_bytes(), g.canonical_bytes());
            assert_eq!(decoded.node_count(), 4);
            assert_eq!(decoded.edge_count(), 3);
            assert_eq!(decoded.direction(), direction);
            for (id, e) in g.edges() {
                assert_eq!(decoded.edge(id).source(), e.source());
                assert_eq!(decoded.edge(id).cost(), e.cost());
            }
        }
    }

    #[test]
    fn malformed_graphs_are_rejected() {
        let cases = [
            (
                r#"{"direction":"sideways","nodes":1,"edges":[]}"#,
                "direction",
            ),
            (
                r#"{"direction":"directed","nodes":1,"edges":[{"source":0,"target":3,"cost":1}]}"#,
                "out of range",
            ),
            (
                r#"{"direction":"directed","nodes":2,"edges":[{"source":0,"target":1,"cost":-1}]}"#,
                "non-negative",
            ),
            (
                r#"{"direction":"directed","nodes":2,"edges":[{"source":0,"target":1,"cost":Infinity}]}"#,
                "finite",
            ),
            (
                r#"{"direction":"directed","nodes":2,"edges":[{"source":0,"cost":1}]}"#,
                "edges[0]",
            ),
            (
                // A hostile constant-size body must not force a huge
                // allocation.
                r#"{"direction":"directed","nodes":9007199254740991,"edges":[]}"#,
                "wire limit",
            ),
            (
                r#"{"direction":"directed","nodes":2}"#,
                "missing field `edges`",
            ),
        ];
        for (input, want) in cases {
            let err = Graph::decode_str(input).unwrap_err();
            assert!(
                err.to_string().contains(want),
                "{input}: got `{err}`, wanted `{want}`"
            );
        }
    }
}
