//! Weighted directed/undirected multigraphs and the graph algorithms needed
//! by the `bayesian-ignorance` reproduction.
//!
//! Network cost-sharing games live on graphs with non-negative edge costs;
//! every proof in the paper manipulates shortest paths, Steiner trees, or
//! specific generated graph families. This crate provides:
//!
//! * [`Graph`] — a compact adjacency-list multigraph, directed or undirected
//!   ([`Direction`]), with non-negative `f64` edge costs;
//! * [`dijkstra`] / [`ShortestPaths`] — single-source shortest paths with
//!   arbitrary per-edge weight functions (the NCS best response reweights
//!   edges by `c(e)/(load+1)`);
//! * [`apsp::all_pairs`] — the graph metric, feeding `bi-metric`;
//! * [`paths::simple_paths`] — enumeration of simple `s→t` paths, the
//!   action sets of NCS agents;
//! * [`steiner`] — exact Dreyfus–Wagner Steiner trees (undirected), exact
//!   rooted Steiner arborescences (directed), and a metric-closure
//!   2-approximation, used for social optima;
//! * [`mst`], [`union_find`] — spanning-tree machinery;
//! * [`generators`] — the graph families used by the experiments (paths,
//!   stars, grids, random connected `G(n,p)`).
//!
//! # Examples
//!
//! ```
//! use bi_graph::{Direction, Graph};
//!
//! let mut g = Graph::new(Direction::Undirected);
//! let a = g.add_node();
//! let b = g.add_node();
//! let c = g.add_node();
//! g.add_edge(a, b, 1.0);
//! g.add_edge(b, c, 2.0);
//! g.add_edge(a, c, 10.0);
//! let sp = bi_graph::dijkstra(&g, a, |e| g.edge(e).cost());
//! assert_eq!(sp.distance(c), 3.0);
//! ```

pub mod apsp;
pub mod codec;
mod dijkstra;
pub mod generators;
mod graph;
pub mod mst;
pub mod paths;
pub mod steiner;
pub mod union_find;

pub use dijkstra::{dijkstra, shortest_path, ShortestPaths};
pub use graph::{Direction, Edge, EdgeId, Graph, NodeId};
