//! The core multigraph representation.

use std::fmt;

/// Identifies a node of a [`Graph`].
///
/// Node ids are dense indices `0..graph.node_count()`.
///
/// # Examples
///
/// ```
/// use bi_graph::{Direction, Graph, NodeId};
///
/// let mut g = Graph::new(Direction::Directed);
/// let v = g.add_node();
/// assert_eq!(v, NodeId::new(0));
/// assert_eq!(v.index(), 0);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node id from a dense index.
    ///
    /// # Panics
    ///
    /// Panics if `index` exceeds `u32::MAX`.
    #[must_use]
    pub fn new(index: usize) -> Self {
        NodeId(u32::try_from(index).expect("node index overflows u32"))
    }

    /// Returns the dense index of this node.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Identifies an edge of a [`Graph`].
///
/// Edge ids are dense indices `0..graph.edge_count()`; parallel edges get
/// distinct ids.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EdgeId(u32);

impl EdgeId {
    /// Creates an edge id from a dense index.
    ///
    /// # Panics
    ///
    /// Panics if `index` exceeds `u32::MAX`.
    #[must_use]
    pub fn new(index: usize) -> Self {
        EdgeId(u32::try_from(index).expect("edge index overflows u32"))
    }

    /// Returns the dense index of this edge.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// Whether a [`Graph`] is directed or undirected.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Edges are ordered pairs; traversal follows edge orientation.
    Directed,
    /// Edges are unordered pairs; traversal goes both ways.
    Undirected,
}

/// An edge of a [`Graph`]: endpoints plus a non-negative cost.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Edge {
    source: NodeId,
    target: NodeId,
    cost: f64,
}

impl Edge {
    /// The tail (for directed graphs) or first endpoint.
    #[must_use]
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// The head (for directed graphs) or second endpoint.
    #[must_use]
    pub fn target(&self) -> NodeId {
        self.target
    }

    /// The non-negative cost `c(e)`.
    #[must_use]
    pub fn cost(&self) -> f64 {
        self.cost
    }

    /// Given one endpoint, returns the other.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not an endpoint of this edge.
    #[must_use]
    pub fn opposite(&self, v: NodeId) -> NodeId {
        if v == self.source {
            self.target
        } else if v == self.target {
            self.source
        } else {
            panic!("{v} is not an endpoint of this edge");
        }
    }
}

/// A weighted multigraph, directed or undirected.
///
/// Nodes and edges are created through [`Graph::add_node`] and
/// [`Graph::add_edge`] and identified by dense [`NodeId`]/[`EdgeId`]
/// indices. Parallel edges and self-loops are allowed (the paper's
/// constructions never need self-loops, but nothing breaks).
///
/// # Examples
///
/// ```
/// use bi_graph::{Direction, Graph};
///
/// let mut g = Graph::with_nodes(Direction::Undirected, 2);
/// let e = g.add_edge(bi_graph::NodeId::new(0), bi_graph::NodeId::new(1), 3.5);
/// assert_eq!(g.edge(e).cost(), 3.5);
/// assert_eq!(g.node_count(), 2);
/// assert_eq!(g.edge_count(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct Graph {
    direction: Direction,
    edges: Vec<Edge>,
    /// Outgoing adjacency (both directions for undirected graphs).
    adjacency: Vec<Vec<(EdgeId, NodeId)>>,
}

impl Graph {
    /// Creates an empty graph.
    #[must_use]
    pub fn new(direction: Direction) -> Self {
        Graph {
            direction,
            edges: Vec::new(),
            adjacency: Vec::new(),
        }
    }

    /// Creates a graph with `n` isolated nodes.
    #[must_use]
    pub fn with_nodes(direction: Direction, n: usize) -> Self {
        Graph {
            direction,
            edges: Vec::new(),
            adjacency: vec![Vec::new(); n],
        }
    }

    /// Whether the graph is directed.
    #[must_use]
    pub fn is_directed(&self) -> bool {
        self.direction == Direction::Directed
    }

    /// The graph's [`Direction`].
    #[must_use]
    pub fn direction(&self) -> Direction {
        self.direction
    }

    /// Number of nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.adjacency.len()
    }

    /// Number of edges (parallel edges counted separately).
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Adds an isolated node and returns its id.
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId::new(self.adjacency.len());
        self.adjacency.push(Vec::new());
        id
    }

    /// Adds `n` isolated nodes and returns their ids.
    pub fn add_nodes(&mut self, n: usize) -> Vec<NodeId> {
        (0..n).map(|_| self.add_node()).collect()
    }

    /// Adds an edge from `u` to `v` with non-negative `cost` and returns its
    /// id. For undirected graphs the edge is traversable both ways.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range, or if `cost` is negative
    /// or not finite.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId, cost: f64) -> EdgeId {
        assert!(
            u.index() < self.node_count() && v.index() < self.node_count(),
            "edge endpoint out of range"
        );
        assert!(
            cost.is_finite() && cost >= 0.0,
            "edge cost must be finite and non-negative, got {cost}"
        );
        let id = EdgeId::new(self.edges.len());
        self.edges.push(Edge {
            source: u,
            target: v,
            cost,
        });
        self.adjacency[u.index()].push((id, v));
        if self.direction == Direction::Undirected && u != v {
            self.adjacency[v.index()].push((id, u));
        }
        id
    }

    /// Returns the edge with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    #[must_use]
    pub fn edge(&self, e: EdgeId) -> &Edge {
        &self.edges[e.index()]
    }

    /// Iterates over all `(EdgeId, &Edge)` pairs.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, &Edge)> {
        self.edges
            .iter()
            .enumerate()
            .map(|(i, e)| (EdgeId::new(i), e))
    }

    /// Iterates over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.node_count()).map(NodeId::new)
    }

    /// Iterates over the edges leaving `u` as `(EdgeId, neighbour)` pairs.
    /// For undirected graphs this includes edges in both orientations.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn neighbors(&self, u: NodeId) -> impl Iterator<Item = (EdgeId, NodeId)> + '_ {
        self.adjacency[u.index()].iter().copied()
    }

    /// Out-degree of `u` (counting both orientations for undirected graphs).
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    #[must_use]
    pub fn degree(&self, u: NodeId) -> usize {
        self.adjacency[u.index()].len()
    }

    /// Total cost of an edge set, counting each id once.
    ///
    /// # Panics
    ///
    /// Panics if any id is out of range.
    #[must_use]
    pub fn total_cost<I: IntoIterator<Item = EdgeId>>(&self, edges: I) -> f64 {
        let mut seen = vec![false; self.edge_count()];
        let mut sum = 0.0;
        for e in edges {
            if !seen[e.index()] {
                seen[e.index()] = true;
                sum += self.edge(e).cost();
            }
        }
        sum
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_nodes_and_edges() {
        let mut g = Graph::new(Direction::Directed);
        let a = g.add_node();
        let b = g.add_node();
        let e = g.add_edge(a, b, 2.0);
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.edge(e).source(), a);
        assert_eq!(g.edge(e).target(), b);
    }

    #[test]
    fn directed_adjacency_is_one_way() {
        let mut g = Graph::new(Direction::Directed);
        let a = g.add_node();
        let b = g.add_node();
        g.add_edge(a, b, 1.0);
        assert_eq!(g.degree(a), 1);
        assert_eq!(g.degree(b), 0);
    }

    #[test]
    fn undirected_adjacency_is_two_way() {
        let mut g = Graph::new(Direction::Undirected);
        let a = g.add_node();
        let b = g.add_node();
        g.add_edge(a, b, 1.0);
        assert_eq!(g.degree(a), 1);
        assert_eq!(g.degree(b), 1);
    }

    #[test]
    fn parallel_edges_get_distinct_ids() {
        let mut g = Graph::new(Direction::Undirected);
        let a = g.add_node();
        let b = g.add_node();
        let e1 = g.add_edge(a, b, 1.0);
        let e2 = g.add_edge(a, b, 2.0);
        assert_ne!(e1, e2);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_costs() {
        let mut g = Graph::new(Direction::Directed);
        let a = g.add_node();
        let b = g.add_node();
        g.add_edge(a, b, -1.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_dangling_endpoints() {
        let mut g = Graph::new(Direction::Directed);
        let a = g.add_node();
        g.add_edge(a, NodeId::new(5), 1.0);
    }

    #[test]
    fn opposite_returns_other_endpoint() {
        let mut g = Graph::new(Direction::Undirected);
        let a = g.add_node();
        let b = g.add_node();
        let e = g.add_edge(a, b, 1.0);
        assert_eq!(g.edge(e).opposite(a), b);
        assert_eq!(g.edge(e).opposite(b), a);
    }

    #[test]
    fn total_cost_deduplicates_ids() {
        let mut g = Graph::new(Direction::Undirected);
        let a = g.add_node();
        let b = g.add_node();
        let e = g.add_edge(a, b, 3.0);
        assert_eq!(g.total_cost([e, e]), 3.0);
    }

    #[test]
    fn display_formats_are_nonempty() {
        assert_eq!(NodeId::new(3).to_string(), "v3");
        assert_eq!(EdgeId::new(7).to_string(), "e7");
    }
}
