//! Single-source shortest paths with pluggable edge weights.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use bi_util::TotalF64;

use crate::graph::{EdgeId, Graph, NodeId};

/// Result of a [`dijkstra`] run: distances and predecessor edges from a
/// fixed source.
#[derive(Clone, Debug)]
pub struct ShortestPaths {
    source: NodeId,
    dist: Vec<f64>,
    pred: Vec<Option<(EdgeId, NodeId)>>,
}

impl ShortestPaths {
    /// The source node of this run.
    #[must_use]
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// Distance from the source to `v` (`f64::INFINITY` if unreachable).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[must_use]
    pub fn distance(&self, v: NodeId) -> f64 {
        self.dist[v.index()]
    }

    /// Returns `true` if `v` is reachable from the source.
    #[must_use]
    pub fn is_reachable(&self, v: NodeId) -> bool {
        self.dist[v.index()].is_finite()
    }

    /// The edges of a shortest path from the source to `v`, in source-to-`v`
    /// order, or `None` if `v` is unreachable.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[must_use]
    pub fn path_edges(&self, v: NodeId) -> Option<Vec<EdgeId>> {
        if !self.is_reachable(v) {
            return None;
        }
        let mut edges = Vec::new();
        let mut cur = v;
        while cur != self.source {
            let (e, prev) = self.pred[cur.index()]?;
            edges.push(e);
            cur = prev;
        }
        edges.reverse();
        Some(edges)
    }

    /// The nodes of a shortest path from the source to `v` (inclusive), or
    /// `None` if `v` is unreachable.
    #[must_use]
    pub fn path_nodes(&self, v: NodeId) -> Option<Vec<NodeId>> {
        if !self.is_reachable(v) {
            return None;
        }
        let mut nodes = vec![v];
        let mut cur = v;
        while cur != self.source {
            let (_, prev) = self.pred[cur.index()]?;
            nodes.push(prev);
            cur = prev;
        }
        nodes.reverse();
        Some(nodes)
    }

    /// All distances, indexed by node.
    #[must_use]
    pub fn distances(&self) -> &[f64] {
        &self.dist
    }
}

/// Dijkstra's algorithm from `source` with per-edge weights given by
/// `weight`.
///
/// The weight function receives an [`EdgeId`] and must return a
/// non-negative weight; it is what lets the NCS best response reweight
/// edges by `c(e)/(load+1)` without copying the graph.
///
/// # Panics
///
/// Panics if `source` is out of range, or (in debug builds) if `weight`
/// returns a negative value.
///
/// # Examples
///
/// ```
/// use bi_graph::{dijkstra, Direction, Graph};
///
/// let mut g = Graph::new(Direction::Directed);
/// let a = g.add_node();
/// let b = g.add_node();
/// g.add_edge(a, b, 4.0);
/// let sp = dijkstra(&g, a, |e| g.edge(e).cost());
/// assert_eq!(sp.distance(b), 4.0);
/// assert_eq!(sp.path_edges(b).unwrap().len(), 1);
/// ```
pub fn dijkstra<W: Fn(EdgeId) -> f64>(graph: &Graph, source: NodeId, weight: W) -> ShortestPaths {
    assert!(source.index() < graph.node_count(), "source out of range");
    let n = graph.node_count();
    let mut dist = vec![f64::INFINITY; n];
    let mut pred: Vec<Option<(EdgeId, NodeId)>> = vec![None; n];
    let mut heap: BinaryHeap<Reverse<(TotalF64, u32)>> = BinaryHeap::new();
    dist[source.index()] = 0.0;
    heap.push(Reverse((TotalF64::new(0.0), source.index() as u32)));
    while let Some(Reverse((d, u))) = heap.pop() {
        let u = NodeId::new(u as usize);
        let d = d.get();
        if d > dist[u.index()] {
            continue;
        }
        for (e, v) in graph.neighbors(u) {
            let w = weight(e);
            debug_assert!(w >= 0.0, "negative edge weight {w} on {e}");
            let nd = d + w;
            if nd < dist[v.index()] {
                dist[v.index()] = nd;
                pred[v.index()] = Some((e, u));
                heap.push(Reverse((TotalF64::new(nd), v.index() as u32)));
            }
        }
    }
    ShortestPaths { source, dist, pred }
}

/// Convenience wrapper: shortest path under the graph's own edge costs.
/// Returns `(distance, edges)` or `None` if `t` is unreachable from `s`.
///
/// # Examples
///
/// ```
/// use bi_graph::{Direction, Graph};
///
/// let mut g = Graph::new(Direction::Undirected);
/// let a = g.add_node();
/// let b = g.add_node();
/// g.add_edge(a, b, 2.0);
/// let (d, edges) = bi_graph::shortest_path(&g, a, b).unwrap();
/// assert_eq!(d, 2.0);
/// assert_eq!(edges.len(), 1);
/// ```
#[must_use]
pub fn shortest_path(graph: &Graph, s: NodeId, t: NodeId) -> Option<(f64, Vec<EdgeId>)> {
    let sp = dijkstra(graph, s, |e| graph.edge(e).cost());
    let edges = sp.path_edges(t)?;
    Some((sp.distance(t), edges))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Direction;

    fn triangle() -> (Graph, NodeId, NodeId, NodeId) {
        let mut g = Graph::new(Direction::Undirected);
        let a = g.add_node();
        let b = g.add_node();
        let c = g.add_node();
        g.add_edge(a, b, 1.0);
        g.add_edge(b, c, 1.0);
        g.add_edge(a, c, 3.0);
        (g, a, b, c)
    }

    #[test]
    fn prefers_cheaper_two_hop_path() {
        let (g, a, _, c) = triangle();
        let sp = dijkstra(&g, a, |e| g.edge(e).cost());
        assert_eq!(sp.distance(c), 2.0);
        assert_eq!(sp.path_edges(c).unwrap().len(), 2);
        assert_eq!(sp.path_nodes(c).unwrap().len(), 3);
    }

    #[test]
    fn unreachable_nodes_report_infinity() {
        let mut g = Graph::new(Direction::Directed);
        let a = g.add_node();
        let b = g.add_node();
        g.add_edge(b, a, 1.0); // wrong direction
        let sp = dijkstra(&g, a, |e| g.edge(e).cost());
        assert!(!sp.is_reachable(b));
        assert!(sp.path_edges(b).is_none());
        assert!(sp.path_nodes(b).is_none());
    }

    #[test]
    fn custom_weights_override_costs() {
        let (g, a, _, c) = triangle();
        // Make the direct edge free.
        let sp = dijkstra(&g, a, |e| if e.index() == 2 { 0.0 } else { 10.0 });
        assert_eq!(sp.distance(c), 0.0);
    }

    #[test]
    fn path_to_source_is_empty() {
        let (g, a, _, _) = triangle();
        let sp = dijkstra(&g, a, |e| g.edge(e).cost());
        assert_eq!(sp.distance(a), 0.0);
        assert!(sp.path_edges(a).unwrap().is_empty());
        assert_eq!(sp.path_nodes(a).unwrap(), vec![a]);
    }

    #[test]
    fn respects_direction_in_directed_graphs() {
        let mut g = Graph::new(Direction::Directed);
        let a = g.add_node();
        let b = g.add_node();
        let c = g.add_node();
        g.add_edge(a, b, 1.0);
        g.add_edge(c, b, 1.0);
        let sp = dijkstra(&g, a, |e| g.edge(e).cost());
        assert_eq!(sp.distance(b), 1.0);
        assert!(!sp.is_reachable(c));
    }

    #[test]
    fn shortest_path_wrapper_roundtrips() {
        let (g, a, _, c) = triangle();
        let (d, edges) = shortest_path(&g, a, c).unwrap();
        assert_eq!(d, 2.0);
        assert_eq!(g.total_cost(edges), 2.0);
    }

    #[test]
    fn zero_cost_edges_are_fine() {
        let mut g = Graph::new(Direction::Directed);
        let a = g.add_node();
        let b = g.add_node();
        g.add_edge(a, b, 0.0);
        let sp = dijkstra(&g, a, |e| g.edge(e).cost());
        assert_eq!(sp.distance(b), 0.0);
    }
}
