//! Steiner trees: exact Dreyfus–Wagner (undirected), exact rooted Steiner
//! arborescences (directed), and a metric-closure 2-approximation.
//!
//! Social optima of network cost-sharing games are Steiner problems: with a
//! shared source the optimum is a Steiner tree (undirected) or arborescence
//! (directed) over the agents' terminals. The exact dynamic programs run in
//! `O(3^t·n + 2^t·n log n)` for `t` terminals and are used for the paper's
//! constructions (small `t`); the approximation backs larger sweeps.

use std::collections::BinaryHeap;

use bi_util::TotalF64;

use crate::dijkstra::dijkstra;
use crate::graph::{Direction, EdgeId, Graph, NodeId};
use crate::mst;

/// A Steiner tree/arborescence result: total cost plus the bought edges.
#[derive(Clone, Debug, PartialEq)]
pub struct SteinerTree {
    /// Total cost of the edge set.
    pub cost: f64,
    /// The edges of the tree (each id once).
    pub edges: Vec<EdgeId>,
}

/// Hard cap on terminal count for the exact dynamic programs (the DP table
/// has `2^t · n` entries).
pub const MAX_EXACT_TERMINALS: usize = 14;

#[derive(Clone, Copy, Debug)]
enum Decision {
    /// `dp[mask][v]` realized by a shortest path from `v` to the single
    /// terminal in `mask`.
    Leaf,
    /// `dp[mask][v]` realized by merging `dp[sub][v]` and `dp[mask^sub][v]`.
    Split(u32),
    /// `dp[mask][v]` realized by `dp[mask][u]` plus the edge `e` (from `u`
    /// towards `v` in traversal orientation).
    Extend(NodeId, EdgeId),
    /// Unreachable.
    None,
}

struct Dp {
    cost: Vec<Vec<f64>>,
    decision: Vec<Vec<Decision>>,
}

/// Exact minimum Steiner tree connecting `terminals` in an undirected
/// graph, via the Dreyfus–Wagner dynamic program.
///
/// Returns `None` if the terminals are not all in one connected component.
/// With zero or one terminal the result is the empty tree.
///
/// # Panics
///
/// Panics if the graph is directed, a terminal is out of range, or more
/// than [`MAX_EXACT_TERMINALS`] distinct terminals are given.
///
/// # Examples
///
/// ```
/// use bi_graph::{steiner, Direction, Graph, NodeId};
///
/// let mut g = Graph::new(Direction::Undirected);
/// let vs = g.add_nodes(4);
/// g.add_edge(vs[0], vs[3], 1.0); // hub edges
/// g.add_edge(vs[1], vs[3], 1.0);
/// g.add_edge(vs[2], vs[3], 1.0);
/// g.add_edge(vs[0], vs[1], 5.0);
/// let tree = steiner::steiner_tree(&g, &[vs[0], vs[1], vs[2]]).unwrap();
/// assert_eq!(tree.cost, 3.0); // goes through the hub vs[3]
/// ```
#[must_use]
pub fn steiner_tree(graph: &Graph, terminals: &[NodeId]) -> Option<SteinerTree> {
    assert!(
        !graph.is_directed(),
        "steiner_tree requires an undirected graph; use steiner_arborescence"
    );
    exact_steiner(graph, terminals, None)
}

/// Exact minimum Steiner arborescence: a min-cost subgraph of a directed
/// graph containing a `root → t` path for every terminal `t`.
///
/// Returns `None` if some terminal is unreachable from `root`.
///
/// # Panics
///
/// Panics if the graph is undirected, a node is out of range, or more than
/// [`MAX_EXACT_TERMINALS`] distinct terminals are given.
///
/// # Examples
///
/// ```
/// use bi_graph::{steiner, Direction, Graph};
///
/// let mut g = Graph::new(Direction::Directed);
/// let vs = g.add_nodes(3);
/// g.add_edge(vs[0], vs[1], 1.0);
/// g.add_edge(vs[1], vs[2], 1.0);
/// g.add_edge(vs[0], vs[2], 5.0);
/// let tree = steiner::steiner_arborescence(&g, vs[0], &[vs[1], vs[2]]).unwrap();
/// assert_eq!(tree.cost, 2.0);
/// ```
#[must_use]
pub fn steiner_arborescence(
    graph: &Graph,
    root: NodeId,
    terminals: &[NodeId],
) -> Option<SteinerTree> {
    assert!(
        graph.is_directed(),
        "steiner_arborescence requires a directed graph; use steiner_tree"
    );
    exact_steiner(graph, terminals, Some(root))
}

/// Shared DP. For `root = None` (undirected) the answer is rooted at the
/// first terminal; for `root = Some(r)` (directed) at `r`, and all edge
/// relaxations run against the reversed orientation so that subtrees hang
/// *below* their roots.
fn exact_steiner(graph: &Graph, terminals: &[NodeId], root: Option<NodeId>) -> Option<SteinerTree> {
    let mut terms: Vec<NodeId> = terminals.to_vec();
    terms.sort();
    terms.dedup();
    if let Some(r) = root {
        assert!(r.index() < graph.node_count(), "root out of range");
        terms.retain(|&t| t != r);
    }
    for &t in &terms {
        assert!(t.index() < graph.node_count(), "terminal out of range");
    }
    assert!(
        terms.len() <= MAX_EXACT_TERMINALS,
        "exact Steiner limited to {MAX_EXACT_TERMINALS} terminals, got {}",
        terms.len()
    );
    let answer_root = match (root, terms.first()) {
        (Some(r), _) => r,
        (None, Some(&t)) => t,
        (None, None) => {
            return Some(SteinerTree {
                cost: 0.0,
                edges: Vec::new(),
            })
        }
    };
    if terms.is_empty() {
        return Some(SteinerTree {
            cost: 0.0,
            edges: Vec::new(),
        });
    }

    let n = graph.node_count();
    let t = terms.len();
    let full: u32 = (1u32 << t) - 1;

    // Shortest paths from each terminal. In the directed case we need
    // distances *to* the terminal, i.e. shortest paths in the reversed
    // graph, which is also the orientation the Extend relaxation uses.
    let reversed = root.map(|_| reverse(graph));
    let search_graph = reversed.as_ref().unwrap_or(graph);
    let from_terminal: Vec<_> = terms
        .iter()
        .map(|&term| dijkstra(search_graph, term, |e| search_graph.edge(e).cost()))
        .collect();

    let mut dp = Dp {
        cost: vec![vec![f64::INFINITY; n]; (full + 1) as usize],
        decision: vec![vec![Decision::None; n]; (full + 1) as usize],
    };
    for (i, sp) in from_terminal.iter().enumerate() {
        let mask = 1usize << i;
        for v in 0..n {
            dp.cost[mask][v] = sp.distance(NodeId::new(v));
            dp.decision[mask][v] = Decision::Leaf;
        }
    }

    for mask in 1..=(full as usize) {
        if mask.count_ones() >= 2 {
            // Merge step: combine complementary sub-trees at the same node.
            let mut sub = (mask - 1) & mask;
            while sub > 0 {
                let rest = mask ^ sub;
                if sub < rest {
                    sub = (sub - 1) & mask;
                    continue; // each unordered split once
                }
                for v in 0..n {
                    let c = dp.cost[sub][v] + dp.cost[rest][v];
                    if c < dp.cost[mask][v] {
                        dp.cost[mask][v] = c;
                        dp.decision[mask][v] = Decision::Split(sub as u32);
                    }
                }
                sub = (sub - 1) & mask;
            }
        } else {
            continue; // singletons already initialized and relaxed below
        }
        relax(search_graph, &mut dp, mask);
    }

    let best = dp.cost[full as usize][answer_root.index()];
    if !best.is_finite() {
        return None;
    }
    let mut edges = Vec::new();
    collect_edges(&dp, &from_terminal, full, answer_root, &mut edges);
    edges.sort();
    edges.dedup();
    Some(SteinerTree {
        cost: graph.total_cost(edges.iter().copied()),
        edges,
    })
}

/// Dijkstra-style relaxation of `dp[mask][·]` along graph edges.
fn relax(search_graph: &Graph, dp: &mut Dp, mask: usize) {
    let n = search_graph.node_count();
    let mut heap: BinaryHeap<std::cmp::Reverse<(TotalF64, u32)>> = BinaryHeap::new();
    for v in 0..n {
        if dp.cost[mask][v].is_finite() {
            heap.push(std::cmp::Reverse((
                TotalF64::new(dp.cost[mask][v]),
                v as u32,
            )));
        }
    }
    while let Some(std::cmp::Reverse((d, u))) = heap.pop() {
        let u = u as usize;
        let d = d.get();
        if d > dp.cost[mask][u] {
            continue;
        }
        for (e, v) in search_graph.neighbors(NodeId::new(u)) {
            let nd = d + search_graph.edge(e).cost();
            if nd < dp.cost[mask][v.index()] {
                dp.cost[mask][v.index()] = nd;
                dp.decision[mask][v.index()] = Decision::Extend(NodeId::new(u), e);
                heap.push(std::cmp::Reverse((TotalF64::new(nd), v.index() as u32)));
            }
        }
    }
}

/// Reverses a directed graph, preserving edge ids.
fn reverse(graph: &Graph) -> Graph {
    let mut rev = Graph::with_nodes(Direction::Directed, graph.node_count());
    for (_, edge) in graph.edges() {
        rev.add_edge(edge.target(), edge.source(), edge.cost());
    }
    rev
}

fn collect_edges(
    dp: &Dp,
    from_terminal: &[crate::dijkstra::ShortestPaths],
    mask: u32,
    v: NodeId,
    out: &mut Vec<EdgeId>,
) {
    match dp.decision[mask as usize][v.index()] {
        Decision::None => {}
        Decision::Leaf => {
            let i = mask.trailing_zeros() as usize;
            debug_assert_eq!(mask, 1 << i);
            if let Some(path) = from_terminal[i].path_edges(v) {
                out.extend(path);
            }
        }
        Decision::Split(sub) => {
            collect_edges(dp, from_terminal, sub, v, out);
            collect_edges(dp, from_terminal, mask ^ sub, v, out);
        }
        Decision::Extend(u, e) => {
            out.push(e);
            collect_edges(dp, from_terminal, mask, u, out);
        }
    }
}

/// Metric-closure 2-approximation for undirected Steiner trees: MST of the
/// terminal metric, expanded back into graph edges.
///
/// Returns `None` if the terminals are disconnected.
///
/// # Panics
///
/// Panics if the graph is directed or a terminal is out of range.
///
/// # Examples
///
/// ```
/// let g = bi_graph::generators::path_graph(bi_graph::Direction::Undirected, 5, 1.0);
/// let ends = [bi_graph::NodeId::new(0), bi_graph::NodeId::new(4)];
/// let t = bi_graph::steiner::metric_closure_approx(&g, &ends).unwrap();
/// assert_eq!(t.cost, 4.0);
/// ```
#[must_use]
pub fn metric_closure_approx(graph: &Graph, terminals: &[NodeId]) -> Option<SteinerTree> {
    assert!(
        !graph.is_directed(),
        "metric_closure_approx requires an undirected graph"
    );
    let mut terms: Vec<NodeId> = terminals.to_vec();
    terms.sort();
    terms.dedup();
    if terms.len() <= 1 {
        return Some(SteinerTree {
            cost: 0.0,
            edges: Vec::new(),
        });
    }
    let sps: Vec<_> = terms
        .iter()
        .map(|&t| dijkstra(graph, t, |e| graph.edge(e).cost()))
        .collect();
    let mut closure = Graph::with_nodes(Direction::Undirected, terms.len());
    for (i, sp) in sps.iter().enumerate() {
        for (j, &tj) in terms.iter().enumerate().skip(i + 1) {
            let d = sp.distance(tj);
            if !d.is_finite() {
                return None;
            }
            closure.add_edge(NodeId::new(i), NodeId::new(j), d);
        }
    }
    let (_, mst_edges) = mst::kruskal(&closure);
    let mut edges: Vec<EdgeId> = Vec::new();
    for ce in mst_edges {
        let closure_edge = closure.edge(ce);
        let i = closure_edge.source().index();
        let j = closure_edge.target();
        edges.extend(sps[i].path_edges(terms[j.index()]).expect("checked finite"));
    }
    edges.sort();
    edges.dedup();
    Some(SteinerTree {
        cost: graph.total_cost(edges.iter().copied()),
        edges,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::paths;

    #[test]
    fn empty_and_singleton_terminals_cost_zero() {
        let g = generators::path_graph(Direction::Undirected, 3, 1.0);
        assert_eq!(steiner_tree(&g, &[]).unwrap().cost, 0.0);
        assert_eq!(steiner_tree(&g, &[NodeId::new(1)]).unwrap().cost, 0.0);
    }

    #[test]
    fn two_terminals_reduce_to_shortest_path() {
        let g = generators::gnp_connected(Direction::Undirected, 10, 0.4, (1.0, 3.0), 5);
        let s = NodeId::new(0);
        let t = NodeId::new(9);
        let tree = steiner_tree(&g, &[s, t]).unwrap();
        let (d, _) = crate::dijkstra::shortest_path(&g, s, t).unwrap();
        assert!((tree.cost - d).abs() < 1e-9);
    }

    #[test]
    fn star_hub_is_found() {
        let mut g = Graph::new(Direction::Undirected);
        let hub = g.add_node();
        let leaves = g.add_nodes(4);
        for &l in &leaves {
            g.add_edge(hub, l, 1.0);
        }
        // expensive direct edges between leaves
        g.add_edge(leaves[0], leaves[1], 3.0);
        let tree = steiner_tree(&g, &leaves).unwrap();
        assert_eq!(tree.cost, 4.0);
        assert_eq!(tree.edges.len(), 4);
    }

    #[test]
    fn disconnected_terminals_return_none() {
        let mut g = Graph::new(Direction::Undirected);
        let a = g.add_node();
        let b = g.add_node();
        assert!(steiner_tree(&g, &[a, b]).is_none());
    }

    #[test]
    fn tree_edges_connect_all_terminals() {
        let g = generators::gnp_connected(Direction::Undirected, 12, 0.3, (0.5, 2.0), 9);
        let terms = [NodeId::new(0), NodeId::new(5), NodeId::new(11)];
        let tree = steiner_tree(&g, &terms).unwrap();
        // Build subgraph and check connectivity between terminals.
        let mut sub = Graph::with_nodes(Direction::Undirected, g.node_count());
        for &e in &tree.edges {
            let edge = g.edge(e);
            sub.add_edge(edge.source(), edge.target(), edge.cost());
        }
        for &t in &terms[1..] {
            assert!(
                crate::dijkstra::shortest_path(&sub, terms[0], t).is_some(),
                "terminal {t} not connected"
            );
        }
    }

    #[test]
    fn exact_never_exceeds_approximation() {
        for seed in 0..5 {
            let g = generators::gnp_connected(Direction::Undirected, 10, 0.35, (0.5, 2.0), seed);
            let terms = [
                NodeId::new(0),
                NodeId::new(3),
                NodeId::new(7),
                NodeId::new(9),
            ];
            let exact = steiner_tree(&g, &terms).unwrap();
            let approx = metric_closure_approx(&g, &terms).unwrap();
            assert!(exact.cost <= approx.cost + 1e-9);
            assert!(approx.cost <= 2.0 * exact.cost + 1e-9);
        }
    }

    #[test]
    fn arborescence_uses_shared_prefix() {
        let mut g = Graph::new(Direction::Directed);
        let r = g.add_node();
        let mid = g.add_node();
        let t1 = g.add_node();
        let t2 = g.add_node();
        g.add_edge(r, mid, 1.0);
        g.add_edge(mid, t1, 0.5);
        g.add_edge(mid, t2, 0.5);
        g.add_edge(r, t1, 10.0);
        g.add_edge(r, t2, 10.0);
        let tree = steiner_arborescence(&g, r, &[t1, t2]).unwrap();
        assert!((tree.cost - 2.0).abs() < 1e-9);
    }

    #[test]
    fn arborescence_unreachable_terminal_is_none() {
        let mut g = Graph::new(Direction::Directed);
        let r = g.add_node();
        let t = g.add_node();
        g.add_edge(t, r, 1.0); // only wrong direction
        assert!(steiner_arborescence(&g, r, &[t]).is_none());
    }

    #[test]
    fn arborescence_root_among_terminals_is_ignored() {
        let mut g = Graph::new(Direction::Directed);
        let r = g.add_node();
        let t = g.add_node();
        g.add_edge(r, t, 2.0);
        let tree = steiner_arborescence(&g, r, &[r, t]).unwrap();
        assert_eq!(tree.cost, 2.0);
    }

    #[test]
    fn reconstructed_edges_form_valid_subgraph_paths() {
        let mut g = Graph::new(Direction::Directed);
        let vs = g.add_nodes(5);
        g.add_edge(vs[0], vs[1], 1.0);
        g.add_edge(vs[1], vs[2], 1.0);
        g.add_edge(vs[1], vs[3], 1.0);
        g.add_edge(vs[0], vs[4], 1.0);
        g.add_edge(vs[4], vs[2], 5.0);
        let tree = steiner_arborescence(&g, vs[0], &[vs[2], vs[3]]).unwrap();
        assert!((tree.cost - 3.0).abs() < 1e-9);
        // Subgraph must contain root->terminal paths.
        let mut sub = Graph::with_nodes(Direction::Directed, g.node_count());
        for &e in &tree.edges {
            let edge = g.edge(e);
            sub.add_edge(edge.source(), edge.target(), edge.cost());
        }
        for t in [vs[2], vs[3]] {
            assert!(crate::dijkstra::shortest_path(&sub, vs[0], t).is_some());
        }
        let _ = paths::PathLimits::default();
    }
}
