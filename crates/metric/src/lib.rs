//! Finite metric spaces and probabilistic tree embeddings.
//!
//! Lemma 3.4 of *Bayesian ignorance* bounds `optP/optC = O(log n)` for
//! undirected Bayesian NCS games by routing every agent along a random
//! dominating tree: Fakcharoenphol–Rao–Talwar (FRT) prove that every
//! `n`-point metric embeds into a distribution over hierarchically
//! separated trees (HSTs) with expected stretch `O(log n)`, and Gupta's
//! technique removes the Steiner (internal) nodes at constant extra
//! distortion. This crate implements all of it:
//!
//! * [`space::MetricSpace`] — validated finite metrics, from matrices or
//!   graphs (via APSP);
//! * [`tree::HstTree`] — the hierarchical trees produced by FRT, with leaf
//!   distances and edge traversal;
//! * [`frt`] — the FRT sampling algorithm (random permutation + random
//!   radius scale `β`), guaranteed dominating by construction;
//! * [`steiner_removal`] — contraction of internal nodes onto their
//!   centers, preserving domination by the triangle inequality;
//! * [`stretch`] — empirical stretch measurement used by the benches.
//!
//! # Examples
//!
//! ```
//! use bi_metric::{frt, space::MetricSpace, stretch};
//!
//! let g = bi_graph::generators::grid_graph(4, 4, 1.0);
//! let metric = MetricSpace::from_graph(&g).unwrap();
//! let tree = frt::sample(&metric, &mut bi_util::rng::seeded(7));
//! // FRT trees dominate the metric…
//! assert!(stretch::is_dominating(&metric, &tree));
//! ```

pub mod frt;
pub mod space;
pub mod steiner_removal;
pub mod stretch;
pub mod tree;

pub use space::MetricSpace;
pub use tree::HstTree;
