//! Steiner-node removal from HSTs (Gupta's technique, simplified).
//!
//! FRT trees have internal nodes for clusters; Lemma 3.4 quotes Gupta's
//! result that these "Steiner points" can be removed at constant extra
//! distortion. Because every FRT cluster's center *is* a metric point, the
//! contraction here is direct: build a tree on the points where an edge
//! joins the centers of a parent/child cluster pair whenever they differ,
//! weighted by the HST leaf-to-leaf distance of the two centers. Each edge
//! weight then dominates the metric distance of its endpoints, so by the
//! triangle inequality the contracted tree still dominates the metric.

use bi_graph::{Direction, Graph, NodeId};

use crate::space::MetricSpace;
use crate::tree::HstTree;

/// A tree on the metric points themselves (no Steiner nodes), as an
/// undirected weighted graph plus its pairwise distance matrix.
#[derive(Clone, Debug)]
pub struct ContractedTree {
    /// The tree as a graph on `0..n` (node ids = metric point indices).
    pub graph: Graph,
    /// Pairwise distances in the contracted tree.
    pub dist: Vec<Vec<f64>>,
}

/// Contracts an HST onto its centers.
///
/// Every cluster is identified with its center point; parent/child cluster
/// pairs with distinct centers become tree edges weighted by the HST
/// leaf-to-leaf distance between the centers. The result is a spanning
/// tree of the points that still dominates the source metric.
///
/// # Panics
///
/// Panics if the tree and metric disagree on the point count.
#[must_use]
pub fn contract(metric: &MetricSpace, tree: &HstTree) -> ContractedTree {
    assert_eq!(metric.len(), tree.point_count(), "point count mismatch");
    let n = metric.len();
    let mut graph = Graph::with_nodes(Direction::Undirected, n);
    let mut attached = vec![false; n];
    // Walk tree edges; whenever the child's center differs from its
    // *effective* ancestor center, emit an edge between the two centers.
    // Track each node's effective center (itself, or inherited from the
    // parent when equal).
    let root_center = tree.node(0).center;
    attached[root_center] = true;
    for (parent, child) in tree.edges() {
        let pc = tree.node(parent).center;
        let cc = tree.node(child).center;
        if pc != cc && !attached[cc] {
            attached[cc] = true;
            let w = tree.distance(pc, cc).max(metric.distance(pc, cc));
            graph.add_edge(NodeId::new(pc), NodeId::new(cc), w);
        }
    }
    debug_assert!(attached.iter().all(|&a| a), "every point has a center node");
    let dist = bi_graph::apsp::all_pairs(&graph);
    ContractedTree { graph, dist }
}

impl ContractedTree {
    /// Distance between two points in the contracted tree.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    #[must_use]
    pub fn distance(&self, u: usize, v: usize) -> f64 {
        self.dist[u][v]
    }

    /// Whether the contracted tree dominates `metric`.
    #[must_use]
    pub fn dominates(&self, metric: &MetricSpace) -> bool {
        let n = metric.len();
        for u in 0..n {
            for v in (u + 1)..n {
                if self.distance(u, v) < metric.distance(u, v) - 1e-9 {
                    return false;
                }
            }
        }
        true
    }

    /// Average stretch of the contracted tree over all pairs.
    #[must_use]
    pub fn average_stretch(&self, metric: &MetricSpace) -> f64 {
        let n = metric.len();
        if n < 2 {
            return 1.0;
        }
        let mut total = 0.0;
        let mut pairs = 0usize;
        for u in 0..n {
            for v in (u + 1)..n {
                total += self.distance(u, v) / metric.distance(u, v);
                pairs += 1;
            }
        }
        total / pairs as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frt;
    use bi_graph::generators;

    fn grid_metric(side: usize) -> MetricSpace {
        MetricSpace::from_graph(&generators::grid_graph(side, side, 1.0)).unwrap()
    }

    #[test]
    fn contraction_spans_all_points_as_a_tree() {
        let metric = grid_metric(4);
        for seed in 0..10 {
            let tree = frt::sample(&metric, &mut bi_util::rng::seeded(seed));
            let ct = contract(&metric, &tree);
            assert_eq!(ct.graph.node_count(), 16);
            assert_eq!(ct.graph.edge_count(), 15, "a tree has n-1 edges");
            assert!(bi_graph::apsp::is_strongly_connected(&ct.graph));
        }
    }

    #[test]
    fn contraction_preserves_domination() {
        let metric = grid_metric(4);
        for seed in 0..10 {
            let tree = frt::sample(&metric, &mut bi_util::rng::seeded(100 + seed));
            let ct = contract(&metric, &tree);
            assert!(ct.dominates(&metric), "seed {seed}");
        }
    }

    #[test]
    fn contracted_stretch_stays_within_constant_of_hst_stretch() {
        let metric = grid_metric(4);
        let mut ratios = Vec::new();
        for seed in 0..10 {
            let tree = frt::sample(&metric, &mut bi_util::rng::seeded(200 + seed));
            let hst_avg = crate::stretch::average_stretch(&metric, &tree);
            let ct = contract(&metric, &tree);
            ratios.push(ct.average_stretch(&metric) / hst_avg);
        }
        let worst = ratios.iter().copied().fold(0.0f64, f64::max);
        assert!(
            worst < 8.0,
            "contraction blow-up {worst} exceeds Gupta's constant regime"
        );
    }

    #[test]
    fn single_point_contracts_to_single_node() {
        let m = MetricSpace::from_matrix(vec![vec![0.0]]).unwrap();
        let tree = frt::sample(&m, &mut bi_util::rng::seeded(0));
        let ct = contract(&m, &tree);
        assert_eq!(ct.graph.node_count(), 1);
        assert_eq!(ct.graph.edge_count(), 0);
    }
}
