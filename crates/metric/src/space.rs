//! Validated finite metric spaces.

use std::fmt;

use bi_graph::Graph;

/// Errors constructing a [`MetricSpace`].
#[derive(Clone, Debug, PartialEq)]
pub enum MetricError {
    /// The matrix is empty or not square.
    BadShape,
    /// A diagonal entry is nonzero, an off-diagonal entry is non-positive
    /// or non-finite, or the matrix is asymmetric.
    NotAMetric(String),
    /// The triangle inequality fails for the reported triple.
    TriangleViolation(usize, usize, usize),
    /// The source graph is not connected (some distance is infinite).
    Disconnected,
}

impl fmt::Display for MetricError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MetricError::BadShape => write!(f, "distance matrix must be square and non-empty"),
            MetricError::NotAMetric(msg) => write!(f, "not a metric: {msg}"),
            MetricError::TriangleViolation(i, j, k) => {
                write!(f, "triangle inequality fails on ({i}, {j}, {k})")
            }
            MetricError::Disconnected => write!(f, "graph metric requires a connected graph"),
        }
    }
}

impl std::error::Error for MetricError {}

/// A finite metric space: a validated symmetric distance matrix with zero
/// diagonal, positive off-diagonal entries, and the triangle inequality.
///
/// # Examples
///
/// ```
/// use bi_metric::MetricSpace;
///
/// let m = MetricSpace::from_matrix(vec![
///     vec![0.0, 1.0, 2.0],
///     vec![1.0, 0.0, 1.0],
///     vec![2.0, 1.0, 0.0],
/// ]).unwrap();
/// assert_eq!(m.len(), 3);
/// assert_eq!(m.distance(0, 2), 2.0);
/// assert_eq!(m.diameter(), 2.0);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct MetricSpace {
    dist: Vec<Vec<f64>>,
}

impl MetricSpace {
    /// Validates and wraps a distance matrix.
    ///
    /// # Errors
    ///
    /// See [`MetricError`].
    pub fn from_matrix(dist: Vec<Vec<f64>>) -> Result<Self, MetricError> {
        let n = dist.len();
        if n == 0 || dist.iter().any(|row| row.len() != n) {
            return Err(MetricError::BadShape);
        }
        for (i, row) in dist.iter().enumerate() {
            if row[i] != 0.0 {
                return Err(MetricError::NotAMetric(format!("d({i},{i}) ≠ 0")));
            }
            for (j, &d) in row.iter().enumerate() {
                if i == j {
                    continue;
                }
                if !d.is_finite() || d <= 0.0 {
                    return Err(MetricError::NotAMetric(format!(
                        "d({i},{j}) = {d} must be positive and finite"
                    )));
                }
                if (d - dist[j][i]).abs() > 1e-9 * d.max(1.0) {
                    return Err(MetricError::NotAMetric(format!("d({i},{j}) ≠ d({j},{i})")));
                }
            }
        }
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    if dist[i][j] > dist[i][k] + dist[k][j] + 1e-9 {
                        return Err(MetricError::TriangleViolation(i, j, k));
                    }
                }
            }
        }
        Ok(MetricSpace { dist })
    }

    /// The shortest-path metric of a connected graph (undirected, or
    /// directed with symmetric distances).
    ///
    /// # Errors
    ///
    /// Returns [`MetricError::Disconnected`] if some pair is unreachable
    /// and propagates metric validation failures (e.g. asymmetric directed
    /// distances).
    pub fn from_graph(graph: &Graph) -> Result<Self, MetricError> {
        let dist = bi_graph::apsp::all_pairs(graph);
        if dist
            .iter()
            .flat_map(|row| row.iter())
            .any(|d| !d.is_finite())
        {
            return Err(MetricError::Disconnected);
        }
        // Graphs may have distinct vertices at distance 0 (zero-cost
        // edges); perturb is the caller's business, so reject instead.
        Self::from_matrix(dist)
    }

    /// Number of points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.dist.len()
    }

    /// `true` when the space has no points (cannot happen for validated
    /// spaces; included for API completeness).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.dist.is_empty()
    }

    /// Distance between two points.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    #[must_use]
    pub fn distance(&self, u: usize, v: usize) -> f64 {
        self.dist[u][v]
    }

    /// Largest pairwise distance.
    #[must_use]
    pub fn diameter(&self) -> f64 {
        self.dist
            .iter()
            .flat_map(|row| row.iter())
            .copied()
            .fold(0.0, f64::max)
    }

    /// Smallest positive pairwise distance (`∞` for a single point).
    #[must_use]
    pub fn min_distance(&self) -> f64 {
        let mut min = f64::INFINITY;
        for (i, row) in self.dist.iter().enumerate() {
            for (j, &d) in row.iter().enumerate() {
                if i != j {
                    min = min.min(d);
                }
            }
        }
        min
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bi_graph::{generators, Direction};

    #[test]
    fn accepts_valid_metrics() {
        let m = MetricSpace::from_matrix(vec![vec![0.0, 2.0], vec![2.0, 0.0]]).unwrap();
        assert_eq!(m.min_distance(), 2.0);
        assert!(!m.is_empty());
    }

    #[test]
    fn rejects_asymmetry_and_bad_diagonals() {
        assert!(matches!(
            MetricSpace::from_matrix(vec![vec![0.0, 1.0], vec![2.0, 0.0]]),
            Err(MetricError::NotAMetric(_))
        ));
        assert!(matches!(
            MetricSpace::from_matrix(vec![vec![1.0]]),
            Err(MetricError::NotAMetric(_))
        ));
        assert!(matches!(
            MetricSpace::from_matrix(vec![]),
            Err(MetricError::BadShape)
        ));
    }

    #[test]
    fn rejects_triangle_violations() {
        let err = MetricSpace::from_matrix(vec![
            vec![0.0, 10.0, 1.0],
            vec![10.0, 0.0, 1.0],
            vec![1.0, 1.0, 0.0],
        ])
        .unwrap_err();
        assert!(matches!(err, MetricError::TriangleViolation(..)));
        assert!(err.to_string().contains("triangle"));
    }

    #[test]
    fn graph_metric_matches_shortest_paths() {
        let g = generators::path_graph(Direction::Undirected, 4, 2.0);
        let m = MetricSpace::from_graph(&g).unwrap();
        assert_eq!(m.distance(0, 3), 6.0);
        assert_eq!(m.diameter(), 6.0);
        assert_eq!(m.min_distance(), 2.0);
    }

    #[test]
    fn disconnected_graphs_are_rejected() {
        let mut g = Graph::new(Direction::Undirected);
        g.add_node();
        g.add_node();
        assert_eq!(MetricSpace::from_graph(&g), Err(MetricError::Disconnected));
    }
}
