//! Hierarchically separated trees (HSTs).

/// A node of an [`HstTree`].
#[derive(Clone, Debug)]
pub struct HstNode {
    /// Parent node index (`None` for the root).
    pub parent: Option<usize>,
    /// Weight of the edge to the parent (0 for the root).
    pub parent_weight: f64,
    /// Child node indices.
    pub children: Vec<usize>,
    /// The metric point acting as this cluster's center.
    pub center: usize,
    /// The level of this cluster in the hierarchy (leaves are level 0).
    pub level: u32,
    /// For leaves, the represented metric point.
    pub point: Option<usize>,
}

/// A rooted tree over clusters of a finite metric, as produced by the FRT
/// algorithm: leaves correspond one-to-one to metric points, internal
/// nodes to clusters with a designated center (itself a metric point).
///
/// Leaf-to-leaf distances dominate the source metric (checked by
/// `bi_metric::stretch::is_dominating` in tests).
#[derive(Clone, Debug)]
pub struct HstTree {
    nodes: Vec<HstNode>,
    /// `leaf_of[p]` is the leaf node index of metric point `p`.
    leaf_of: Vec<usize>,
    /// Distance from each node up to the root.
    to_root: Vec<f64>,
}

impl HstTree {
    /// Assembles a tree from its node list (used by the FRT builder).
    ///
    /// # Panics
    ///
    /// Panics if the node list is empty, node 0 is not the root, a parent
    /// index is not smaller than its child's, or the leaves do not cover
    /// `0..n_points` exactly once.
    #[must_use]
    pub fn from_nodes(nodes: Vec<HstNode>, n_points: usize) -> Self {
        assert!(!nodes.is_empty(), "tree needs at least one node");
        assert!(nodes[0].parent.is_none(), "node 0 must be the root");
        let mut leaf_of = vec![usize::MAX; n_points];
        let mut to_root = vec![0.0f64; nodes.len()];
        for (i, node) in nodes.iter().enumerate() {
            if let Some(p) = node.parent {
                assert!(p < i, "parents must precede children");
                to_root[i] = to_root[p] + node.parent_weight;
            }
            if let Some(pt) = node.point {
                assert!(pt < n_points, "leaf point out of range");
                assert_eq!(leaf_of[pt], usize::MAX, "duplicate leaf for point {pt}");
                leaf_of[pt] = i;
            }
        }
        assert!(
            leaf_of.iter().all(|&l| l != usize::MAX),
            "every point needs a leaf"
        );
        HstTree {
            nodes,
            leaf_of,
            to_root,
        }
    }

    /// Number of tree nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of metric points (leaves).
    #[must_use]
    pub fn point_count(&self) -> usize {
        self.leaf_of.len()
    }

    /// The node at `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    #[must_use]
    pub fn node(&self, idx: usize) -> &HstNode {
        &self.nodes[idx]
    }

    /// The leaf node index of a metric point.
    ///
    /// # Panics
    ///
    /// Panics if `point` is out of range.
    #[must_use]
    pub fn leaf(&self, point: usize) -> usize {
        self.leaf_of[point]
    }

    /// Tree distance between two metric points (sum of edge weights along
    /// the unique leaf-to-leaf path).
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    #[must_use]
    pub fn distance(&self, u: usize, v: usize) -> f64 {
        let lca = self.lca(self.leaf_of[u], self.leaf_of[v]);
        self.to_root[self.leaf_of[u]] + self.to_root[self.leaf_of[v]] - 2.0 * self.to_root[lca]
    }

    /// Lowest common ancestor of two nodes (walks up by level; trees here
    /// are shallow, `O(log Δ)` deep).
    #[must_use]
    pub fn lca(&self, mut a: usize, mut b: usize) -> usize {
        while a != b {
            if self.nodes[a].level < self.nodes[b].level {
                a = self.nodes[a].parent.expect("root has max level");
            } else if self.nodes[b].level < self.nodes[a].level {
                b = self.nodes[b].parent.expect("root has max level");
            } else {
                a = self.nodes[a].parent.expect("distinct nodes below root");
                b = self.nodes[b].parent.expect("distinct nodes below root");
            }
        }
        a
    }

    /// The node indices on the leaf-to-leaf path between two points
    /// (inclusive), through the LCA.
    #[must_use]
    pub fn path_nodes(&self, u: usize, v: usize) -> Vec<usize> {
        let (lu, lv) = (self.leaf_of[u], self.leaf_of[v]);
        let lca = self.lca(lu, lv);
        let mut up = Vec::new();
        let mut cur = lu;
        while cur != lca {
            up.push(cur);
            cur = self.nodes[cur].parent.expect("below lca");
        }
        up.push(lca);
        let mut down = Vec::new();
        cur = lv;
        while cur != lca {
            down.push(cur);
            cur = self.nodes[cur].parent.expect("below lca");
        }
        up.extend(down.into_iter().rev());
        up
    }

    /// Iterates over all `(parent_index, child_index)` tree edges.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .filter_map(|(i, n)| n.parent.map(|p| (p, i)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small fixed tree:      root(c=0, lvl 2)
    ///                          /            \
    ///                   a(c=0, lvl1)    b(c=2, lvl1)
    ///                   /    \              \
    ///                leaf0  leaf1          leaf2
    fn sample() -> HstTree {
        let nodes = vec![
            HstNode {
                parent: None,
                parent_weight: 0.0,
                children: vec![1, 2],
                center: 0,
                level: 2,
                point: None,
            },
            HstNode {
                parent: Some(0),
                parent_weight: 2.0,
                children: vec![3, 4],
                center: 0,
                level: 1,
                point: None,
            },
            HstNode {
                parent: Some(0),
                parent_weight: 2.0,
                children: vec![5],
                center: 2,
                level: 1,
                point: None,
            },
            HstNode {
                parent: Some(1),
                parent_weight: 1.0,
                children: vec![],
                center: 0,
                level: 0,
                point: Some(0),
            },
            HstNode {
                parent: Some(1),
                parent_weight: 1.0,
                children: vec![],
                center: 1,
                level: 0,
                point: Some(1),
            },
            HstNode {
                parent: Some(2),
                parent_weight: 1.0,
                children: vec![],
                center: 2,
                level: 0,
                point: Some(2),
            },
        ];
        HstTree::from_nodes(nodes, 3)
    }

    #[test]
    fn distances_sum_edge_weights() {
        let t = sample();
        assert_eq!(t.distance(0, 1), 2.0);
        assert_eq!(t.distance(0, 2), 6.0);
        assert_eq!(t.distance(2, 1), 6.0);
        assert_eq!(t.distance(1, 1), 0.0);
    }

    #[test]
    fn lca_levels() {
        let t = sample();
        assert_eq!(t.lca(t.leaf(0), t.leaf(1)), 1);
        assert_eq!(t.lca(t.leaf(0), t.leaf(2)), 0);
    }

    #[test]
    fn path_nodes_cross_the_lca() {
        let t = sample();
        let p = t.path_nodes(0, 2);
        assert_eq!(p.first(), Some(&t.leaf(0)));
        assert_eq!(p.last(), Some(&t.leaf(2)));
        assert!(p.contains(&0), "path must pass through the root LCA");
    }

    #[test]
    fn edges_enumerate_parent_child_pairs() {
        let t = sample();
        assert_eq!(t.edges().count(), 5);
    }

    #[test]
    #[should_panic(expected = "every point needs a leaf")]
    fn missing_leaves_are_rejected() {
        let nodes = vec![HstNode {
            parent: None,
            parent_weight: 0.0,
            children: vec![],
            center: 0,
            level: 0,
            point: Some(0),
        }];
        let _ = HstTree::from_nodes(nodes, 2);
    }
}
