//! The Fakcharoenphol–Rao–Talwar probabilistic tree embedding.
//!
//! Given an `n`-point metric, FRT samples a dominating HST whose expected
//! stretch is `O(log n)` for every pair. The construction: draw a uniform
//! random permutation `π` of the points and `β ∈ [1, 2)` with density
//! `1/(β ln 2)`; level-`i` clusters are carved by assigning each point to
//! the first point in `π`-order within distance `β·2^{i-1}` (in units of
//! the minimum distance), refining from the top level down to singletons.
//!
//! Tree edge weights between level `i` and `i−1` are `2^i` (scaled), which
//! makes domination unconditional: points separated at level `i` are at
//! metric distance ≤ `β·2^i ≤ 2^{i+1}` but at tree distance
//! `2(2^{i+1} − 2) ≥ 2^{i+1}` for `i ≥ 1`.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;

use crate::space::MetricSpace;
use crate::tree::{HstNode, HstTree};

/// Samples one FRT tree for `metric` using `rng`.
///
/// # Panics
///
/// Panics if the metric has zero points (impossible for validated
/// [`MetricSpace`] values).
///
/// # Examples
///
/// ```
/// use bi_metric::{frt, MetricSpace};
///
/// let g = bi_graph::generators::cycle_graph(bi_graph::Direction::Undirected, 8, 1.0);
/// let metric = MetricSpace::from_graph(&g).unwrap();
/// let tree = frt::sample(&metric, &mut bi_util::rng::seeded(1));
/// assert_eq!(tree.point_count(), 8);
/// // Domination: tree distances never undercut the metric.
/// assert!(tree.distance(0, 4) >= metric.distance(0, 4));
/// ```
#[must_use]
pub fn sample(metric: &MetricSpace, rng: &mut StdRng) -> HstTree {
    let n = metric.len();
    assert!(n > 0, "metric must be non-empty");
    if n == 1 {
        return HstTree::from_nodes(
            vec![HstNode {
                parent: None,
                parent_weight: 0.0,
                children: vec![],
                center: 0,
                level: 0,
                point: Some(0),
            }],
            1,
        );
    }
    let dmin = metric.min_distance();
    // Scaled distances d'(u,v) = d(u,v)/dmin are ≥ 1.
    let scaled = |u: usize, v: usize| metric.distance(u, v) / dmin;
    let diameter = metric.diameter() / dmin;
    // Top level δ with β·2^{δ-1} ≥ 2^{δ-1} ≥ diameter.
    let delta = (diameter.log2().ceil() as u32) + 1;

    let mut pi: Vec<usize> = (0..n).collect();
    pi.shuffle(rng);
    // β with density 1/(β ln 2) on [1,2): β = 2^U for U uniform on [0,1).
    let beta = 2f64.powf(rng.random_range(0.0..1.0));

    // Build the laminar family top-down. Each work item is a cluster with
    // its tree-node index and level.
    let mut nodes: Vec<HstNode> = vec![HstNode {
        parent: None,
        parent_weight: 0.0,
        children: vec![],
        center: pi[0],
        level: delta,
        point: if n == 1 { Some(0) } else { None },
    }];
    let mut queue: Vec<(usize, u32, Vec<usize>)> = vec![(0, delta, (0..n).collect())];
    while let Some((node_idx, level, members)) = queue.pop() {
        if level == 0 {
            debug_assert_eq!(members.len(), 1, "level-0 clusters are singletons");
            nodes[node_idx].point = Some(members[0]);
            continue;
        }
        let child_level = level - 1;
        let radius = if child_level == 0 {
            beta / 2.0
        } else {
            beta * 2f64.powi(child_level as i32 - 1)
        };
        // Partition members: each goes to the π-first point within radius.
        let mut groups: Vec<(usize, Vec<usize>)> = Vec::new();
        for &v in &members {
            let center = pi
                .iter()
                .copied()
                .find(|&u| scaled(u, v) <= radius)
                .expect("v itself is within any positive radius");
            match groups.iter_mut().find(|(c, _)| *c == center) {
                Some((_, g)) => g.push(v),
                None => groups.push((center, vec![v])),
            }
        }
        let edge_weight = 2f64.powi(level as i32) * dmin;
        for (center, group) in groups {
            let child_idx = nodes.len();
            nodes.push(HstNode {
                parent: Some(node_idx),
                parent_weight: edge_weight,
                children: vec![],
                center,
                level: child_level,
                point: None,
            });
            nodes[node_idx].children.push(child_idx);
            queue.push((child_idx, child_level, group));
        }
    }
    HstTree::from_nodes(nodes, n)
}

/// Samples `count` trees and returns the one with the smallest average
/// stretch over all pairs — the constructive "some tree meets the
/// expectation" step used by Lemma 3.4.
///
/// # Panics
///
/// Panics if `count == 0`.
#[must_use]
pub fn sample_best_of(metric: &MetricSpace, count: usize, rng: &mut StdRng) -> HstTree {
    assert!(count > 0, "need at least one sample");
    let mut best: Option<(f64, HstTree)> = None;
    for _ in 0..count {
        let tree = sample(metric, rng);
        let avg = crate::stretch::average_stretch(metric, &tree);
        if best.as_ref().is_none_or(|(b, _)| avg < *b) {
            best = Some((avg, tree));
        }
    }
    best.expect("count > 0").1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stretch;
    use bi_graph::generators;

    fn grid_metric(side: usize) -> MetricSpace {
        MetricSpace::from_graph(&generators::grid_graph(side, side, 1.0)).unwrap()
    }

    #[test]
    fn every_sampled_tree_dominates() {
        let metric = grid_metric(4);
        for seed in 0..20 {
            let tree = sample(&metric, &mut bi_util::rng::seeded(seed));
            assert!(
                stretch::is_dominating(&metric, &tree),
                "seed {seed} produced a non-dominating tree"
            );
        }
    }

    #[test]
    fn leaves_biject_with_points() {
        let metric = grid_metric(3);
        let tree = sample(&metric, &mut bi_util::rng::seeded(3));
        assert_eq!(tree.point_count(), 9);
        for p in 0..9 {
            assert_eq!(tree.node(tree.leaf(p)).point, Some(p));
        }
    }

    #[test]
    fn average_stretch_is_logarithmic_in_practice() {
        let metric = grid_metric(5); // 25 points
        let mut rng = bi_util::rng::seeded(9);
        let mut total = 0.0;
        let samples = 30;
        for _ in 0..samples {
            total += stretch::average_stretch(&metric, &sample(&metric, &mut rng));
        }
        let avg = total / f64::from(samples);
        // O(log n) with modest constants: comfortably below 60 for n = 25,
        // and certainly above 1 (domination).
        assert!(avg >= 1.0);
        assert!(avg < 60.0, "average stretch {avg} unreasonably large");
    }

    #[test]
    fn single_point_metric_is_a_lone_leaf() {
        // Degenerate 1-point matrix is valid.
        let m = MetricSpace::from_matrix(vec![vec![0.0]]).unwrap();
        let tree = sample(&m, &mut bi_util::rng::seeded(0));
        assert_eq!(tree.node_count(), 1);
        assert_eq!(tree.distance(0, 0), 0.0);
    }

    #[test]
    fn best_of_sampling_improves_average_stretch() {
        let metric = grid_metric(4);
        let mut rng = bi_util::rng::seeded(11);
        let single = sample(&metric, &mut bi_util::rng::seeded(12));
        let best = sample_best_of(&metric, 20, &mut rng);
        assert!(
            stretch::average_stretch(&metric, &best)
                <= stretch::average_stretch(&metric, &single) + 1e-9
                || stretch::average_stretch(&metric, &best) < 25.0
        );
        assert!(stretch::is_dominating(&metric, &best));
    }

    #[test]
    fn two_point_metric_has_correct_separation() {
        let m = MetricSpace::from_matrix(vec![vec![0.0, 5.0], vec![5.0, 0.0]]).unwrap();
        let tree = sample(&m, &mut bi_util::rng::seeded(2));
        assert!(tree.distance(0, 1) >= 5.0);
    }
}
