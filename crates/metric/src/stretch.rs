//! Stretch measurement for tree embeddings.

use crate::space::MetricSpace;
use crate::tree::HstTree;

/// Whether `tree` dominates `metric`: `d_T(u,v) ≥ d(u,v)` for every pair
/// (up to floating-point tolerance).
///
/// # Panics
///
/// Panics if the tree and metric have different point counts.
#[must_use]
pub fn is_dominating(metric: &MetricSpace, tree: &HstTree) -> bool {
    assert_eq!(metric.len(), tree.point_count(), "point count mismatch");
    for u in 0..metric.len() {
        for v in (u + 1)..metric.len() {
            if tree.distance(u, v) < metric.distance(u, v) - 1e-9 {
                return false;
            }
        }
    }
    true
}

/// Average stretch `d_T(u,v)/d(u,v)` over all unordered pairs (1.0 for
/// metrics with fewer than two points).
///
/// # Panics
///
/// Panics if the tree and metric have different point counts.
#[must_use]
pub fn average_stretch(metric: &MetricSpace, tree: &HstTree) -> f64 {
    assert_eq!(metric.len(), tree.point_count(), "point count mismatch");
    let n = metric.len();
    if n < 2 {
        return 1.0;
    }
    let mut total = 0.0;
    let mut pairs = 0usize;
    for u in 0..n {
        for v in (u + 1)..n {
            total += tree.distance(u, v) / metric.distance(u, v);
            pairs += 1;
        }
    }
    total / pairs as f64
}

/// Maximum stretch over all pairs (1.0 for metrics with fewer than two
/// points).
///
/// # Panics
///
/// Panics if the tree and metric have different point counts.
#[must_use]
pub fn max_stretch(metric: &MetricSpace, tree: &HstTree) -> f64 {
    assert_eq!(metric.len(), tree.point_count(), "point count mismatch");
    let n = metric.len();
    let mut worst = 1.0f64;
    for u in 0..n {
        for v in (u + 1)..n {
            worst = worst.max(tree.distance(u, v) / metric.distance(u, v));
        }
    }
    worst
}

/// Per-pair expected stretch over a set of sampled trees, returned as the
/// maximum over pairs of the average over trees — the quantity FRT bounds
/// by `O(log n)`.
///
/// # Panics
///
/// Panics if `trees` is empty or inconsistent with the metric.
#[must_use]
pub fn max_expected_stretch(metric: &MetricSpace, trees: &[HstTree]) -> f64 {
    assert!(!trees.is_empty(), "need at least one tree");
    let n = metric.len();
    let mut worst = 0.0f64;
    for u in 0..n {
        for v in (u + 1)..n {
            let avg: f64 = trees
                .iter()
                .map(|t| t.distance(u, v) / metric.distance(u, v))
                .sum::<f64>()
                / trees.len() as f64;
            worst = worst.max(avg);
        }
    }
    worst.max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frt;
    use bi_graph::generators;
    use bi_graph::Direction;

    #[test]
    fn expected_stretch_scales_like_log_n() {
        // Measure max expected stretch on cycles of doubling size; the
        // growth should be clearly sublinear (logarithmic in theory).
        let mut values = Vec::new();
        for &n in &[8usize, 16, 32] {
            let metric = crate::MetricSpace::from_graph(&generators::cycle_graph(
                Direction::Undirected,
                n,
                1.0,
            ))
            .unwrap();
            let mut rng = bi_util::rng::seeded(n as u64);
            let trees: Vec<_> = (0..40).map(|_| frt::sample(&metric, &mut rng)).collect();
            values.push(max_expected_stretch(&metric, &trees));
        }
        // Sublinear growth: quadrupling n (8 → 32) must fall well short of
        // quadrupling the stretch, and the doubling ratio must shrink.
        assert!(values[2] / values[0] < 3.2, "{values:?}");
        assert!(values[2] / values[1] < values[1] / values[0], "{values:?}");
    }

    #[test]
    fn stretch_of_identical_tree_metric_is_one() {
        // A path metric embeds into its own path... approximate: 2-point
        // case where any dominating tree with matching weight is exact.
        let metric = crate::MetricSpace::from_matrix(vec![vec![0.0, 3.0], vec![3.0, 0.0]]).unwrap();
        let tree = frt::sample(&metric, &mut bi_util::rng::seeded(4));
        assert!(average_stretch(&metric, &tree) >= 1.0);
        assert!(max_stretch(&metric, &tree) >= average_stretch(&metric, &tree));
    }
}
